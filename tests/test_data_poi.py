"""Tests for the POI database and spatial index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (CHEMICAL_CATEGORIES, POI, POI_CATEGORIES,
                        POIDatabase, REST_CATEGORIES)
from repro.geo import haversine_m


def make_poi(poi_id, category, lat, lng):
    return POI(poi_id, category, lat, lng)


class TestCategories:
    def test_exactly_29_categories(self):
        assert len(POI_CATEGORIES) == 29

    def test_no_duplicates(self):
        assert len(set(POI_CATEGORIES)) == 29

    def test_chemical_and_rest_are_subsets(self):
        assert set(CHEMICAL_CATEGORIES) <= set(POI_CATEGORIES)
        assert set(REST_CATEGORIES) <= set(POI_CATEGORIES)

    def test_fuel_station_is_both_chemical_and_rest(self):
        # This overlap is the paper's "complex staying scenario".
        assert "fuel_station" in CHEMICAL_CATEGORIES
        assert "fuel_station" in REST_CATEGORIES


class TestPOI:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            POI(0, "space_station", 32.0, 120.9)

    def test_category_index(self):
        poi = make_poi(0, POI_CATEGORIES[5], 32.0, 120.9)
        assert poi.category_index == 5


class TestPOIDatabase:
    def test_empty_database(self):
        db = POIDatabase()
        assert len(db) == 0
        assert db.query_radius(32.0, 120.9, 100.0) == []
        assert db.nearest(32.0, 120.9) is None
        np.testing.assert_array_equal(db.count_categories(32.0, 120.9),
                                      np.zeros(29))

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            POIDatabase(cell_size_m=0)

    def test_radius_query_matches_haversine_bruteforce(self):
        rng = np.random.default_rng(5)
        center = (32.0, 120.9)
        db = POIDatabase()
        pois = []
        for i in range(300):
            lat = center[0] + rng.normal(0, 0.01)
            lng = center[1] + rng.normal(0, 0.01)
            poi = make_poi(i, POI_CATEGORIES[i % 29], lat, lng)
            pois.append(poi)
            db.add(poi)
        radius = 400.0
        got = {p.poi_id for p in db.query_radius(*center, radius)}
        # The grid works in a planar projection; allow a tiny tolerance
        # band around the radius when comparing with spherical distance.
        must_have = {p.poi_id for p in pois
                     if haversine_m(*center, p.lat, p.lng) < radius * 0.995}
        may_have = {p.poi_id for p in pois
                    if haversine_m(*center, p.lat, p.lng) <= radius * 1.005}
        assert must_have <= got <= may_have

    def test_count_categories_shape_and_content(self):
        db = POIDatabase()
        db.add(make_poi(0, "chemical_factory", 32.0, 120.9))
        db.add(make_poi(1, "chemical_factory", 32.0003, 120.9))
        db.add(make_poi(2, "restaurant", 32.0, 120.9005))
        db.add(make_poi(3, "restaurant", 32.3, 121.0))  # far away
        counts = db.count_categories(32.0, 120.9, radius_m=100.0)
        assert counts.shape == (29,)
        idx_chem = POI_CATEGORIES.index("chemical_factory")
        idx_rest = POI_CATEGORIES.index("restaurant")
        assert counts[idx_chem] == 2.0
        assert counts[idx_rest] == 1.0
        assert counts.sum() == 3.0

    def test_count_categories_batch(self):
        db = POIDatabase()
        db.add(make_poi(0, "hospital", 32.0, 120.9))
        batch = db.count_categories_batch(np.array([32.0, 32.2]),
                                          np.array([120.9, 121.0]))
        assert batch.shape == (2, 29)
        assert batch[0].sum() == 1.0
        assert batch[1].sum() == 0.0

    def test_nearest_with_category_filter(self):
        db = POIDatabase()
        db.add(make_poi(0, "hospital", 32.01, 120.9))
        db.add(make_poi(1, "restaurant", 32.001, 120.9))
        nearest = db.nearest(32.0, 120.9)
        assert nearest.poi_id == 1
        nearest_hospital = db.nearest(32.0, 120.9, category="hospital")
        assert nearest_hospital.poi_id == 0
        assert db.nearest(32.0, 120.9, category="bank") is None

    def test_negative_radius_rejected(self):
        db = POIDatabase()
        db.add(make_poi(0, "hospital", 32.0, 120.9))
        with pytest.raises(ValueError):
            db.query_radius(32.0, 120.9, -1.0)
