"""Tests for the hierarchical autoencoder and its trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.encoding import (AutoencoderTrainer, AutoencoderTrainingConfig,
                            CompressionOperator, DecompressionOperator,
                            EncoderConfig, HierarchicalAutoencoder)
from repro.features import CandidateFeaturizer, FeatureExtractor, \
    ZScoreNormalizer
from repro.nn import Tensor, load_module, save_module
from repro.processing import RawTrajectoryProcessor

RNG = np.random.default_rng(41)


@pytest.fixture(scope="module")
def pipeline():
    world = SyntheticWorld(WorldConfig(seed=2))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=5, num_trucks=3, seed=2), world=world)
    processor = RawTrajectoryProcessor()
    processed = [p for p in
                 (processor.process(s.trajectory, s.label) for s in dataset)
                 if p is not None]
    featurizer = CandidateFeaturizer(FeatureExtractor(world.pois),
                                     ZScoreNormalizer())
    featurizer.fit_normalizer([p.cleaned for p in processed])
    return processed, featurizer


class TestOperators:
    def test_compression_operator_shape(self):
        op = CompressionOperator(8, 6, RNG)
        out = op(Tensor(RNG.normal(size=(3, 5, 8))), np.array([5, 2, 4]))
        assert out.shape == (3, 6)
        assert (np.abs(out.numpy()) <= 1.0).all()  # tanh range

    def test_compression_operator_no_attention(self):
        op = CompressionOperator(8, 6, RNG, use_attention=False)
        out = op(Tensor(RNG.normal(size=(2, 4, 8))))
        assert out.shape == (2, 6)
        assert not hasattr(op, "attention")

    def test_decompression_operator_shape(self):
        op = DecompressionOperator(6, 5, 8, RNG)
        out = op(Tensor(RNG.normal(size=(3, 6))), steps=7)
        assert out.shape == (3, 7, 8)
        assert (np.abs(out.numpy()) <= 1.0).all()

    def test_padding_invariance_of_compression(self):
        op = CompressionOperator(4, 6, np.random.default_rng(0))
        x = RNG.normal(size=(1, 3, 4))
        padded = np.concatenate([x, np.full((1, 2, 4), 9.0)], axis=1)
        a = op(Tensor(x), np.array([3])).numpy()
        b = op(Tensor(padded), np.array([3])).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestHierarchicalAutoencoder:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(hidden_size=0)

    def test_cvec_dim(self):
        assert EncoderConfig().cvec_dim == 64

    def test_compress_shape(self, pipeline):
        processed, featurizer = pipeline
        model = HierarchicalAutoencoder(EncoderConfig())
        features = featurizer.featurize(processed[0].candidates[0])
        assert model.compress(features).shape == (1, 64)
        assert model.encode(features).shape == (64,)

    def test_reconstruction_loss_finite_and_positive(self, pipeline):
        processed, featurizer = pipeline
        model = HierarchicalAutoencoder(EncoderConfig())
        features = featurizer.featurize(processed[0].candidates[0])
        loss = model.reconstruction_loss(features)
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_gradients_reach_all_parameters(self, pipeline):
        processed, featurizer = pipeline
        model = HierarchicalAutoencoder(EncoderConfig())
        features = featurizer.featurize(processed[0].candidates[1])
        model.reconstruction_loss(features).backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert missing == []

    def test_encode_trajectory_matches_single(self, pipeline):
        processed, featurizer = pipeline
        model = HierarchicalAutoencoder(EncoderConfig())
        p0 = processed[0]
        stay_segments = [featurizer._segment_features(sp)
                         for sp in p0.stay_points]
        move_segments = [featurizer._segment_features(mp)
                         for mp in p0.move_points]
        pairs = [c.pair for c in p0.candidates]
        batch = model.encode_trajectory(stay_segments, move_segments, pairs)
        assert batch.shape == (p0.num_candidates, 64)
        for k in (0, len(pairs) // 2, len(pairs) - 1):
            single = model.encode(featurizer.featurize(p0.candidates[k]))
            np.testing.assert_allclose(batch[k], single, atol=1e-9)

    def test_encode_rejects_empty_pairs(self):
        model = HierarchicalAutoencoder(EncoderConfig())
        with pytest.raises(ValueError):
            model.encode_trajectory([], [], [])

    def test_nohie_variant(self, pipeline):
        processed, featurizer = pipeline
        model = HierarchicalAutoencoder(EncoderConfig(hierarchical=False))
        features = featurizer.featurize(processed[0].candidates[0])
        assert model.compress(features).shape == (1, 64)
        loss = model.reconstruction_loss(features)
        assert np.isfinite(loss.item())
        p0 = processed[0]
        stay_segments = [featurizer._segment_features(sp)
                         for sp in p0.stay_points]
        move_segments = [featurizer._segment_features(mp)
                         for mp in p0.move_points]
        pairs = [c.pair for c in p0.candidates]
        batch = model.encode_trajectory(stay_segments, move_segments, pairs)
        assert batch.shape == (p0.num_candidates, 64)

    def test_nosel_variant(self, pipeline):
        processed, featurizer = pipeline
        model = HierarchicalAutoencoder(EncoderConfig(use_attention=False))
        features = featurizer.featurize(processed[0].candidates[0])
        assert model.encode(features).shape == (64,)

    def test_serialization_roundtrip(self, pipeline, tmp_path):
        processed, featurizer = pipeline
        a = HierarchicalAutoencoder(EncoderConfig(seed=1))
        b = HierarchicalAutoencoder(EncoderConfig(seed=2))
        save_module(a, tmp_path / "ae.npz")
        load_module(b, tmp_path / "ae.npz")
        features = featurizer.featurize(processed[0].candidates[0])
        np.testing.assert_allclose(a.encode(features), b.encode(features))


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoencoderTrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            AutoencoderTrainingConfig(learning_rate=0)

    def test_training_reduces_loss(self, pipeline):
        processed, featurizer = pipeline
        samples = featurizer.featurize_all(processed[0].candidates)
        model = HierarchicalAutoencoder(EncoderConfig(seed=3))
        trainer = AutoencoderTrainer(model, AutoencoderTrainingConfig(
            epochs=5, learning_rate=3e-3, batch_size=4, patience=5))
        history = trainer.fit(samples)
        assert history.num_epochs >= 2
        assert history.final_loss < history.epoch_losses[0]
        assert not model.training  # back in eval mode

    def test_fit_rejects_empty(self):
        model = HierarchicalAutoencoder(EncoderConfig())
        with pytest.raises(ValueError):
            AutoencoderTrainer(model).fit([])
