"""Tests for the deterministic chaos harness (``repro.chaos``).

Three layers:

1. the engine itself — seeded decisions, replayable ledger, spec
   filtering (rate / keys / max_fires), the installed-hook protocol;
2. crash consistency under torn writes — every byte-boundary prefix of
   a checkpoint or session spill either loads back bit-exact or raises
   a typed corruption error / degrades to a counted fresh session;
   garbage never comes back as data;
3. the fleet chaos soak — 50 truck-days under scrambled + corrupted
   pings, flaky IO, worker crashes and one permanently poisoned
   session: healthy verdicts converge to the fault-free run, the
   poison lands in quarantine with replayable state, and the same seed
   reproduces the same fault ledger twice.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.chaos import (ChaosEngine, FaultSpec, InjectedFault,
                         active_engine, chaos_point, chaos_ping_stream,
                         inject, run_chaos_soak)
from repro.errors import CheckpointCorruptedError
from repro.io import atomic_write_bytes
from repro.nn import CheckpointManager, Linear
from repro.stream import FleetConfig, FleetSessionManager


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------
class TestChaosEngine:
    def test_no_engine_no_faults(self):
        assert active_engine() is None
        assert chaos_point("io.write", key="x") is None

    def test_rate_zero_never_fires_rate_one_always(self):
        with ChaosEngine(0, [FaultSpec("a.b", "fail", rate=0.0)]):
            assert all(chaos_point("a.b") is None for _ in range(50))
        with ChaosEngine(0, [FaultSpec("a.b", "fail", rate=1.0)]):
            assert all(chaos_point("a.b") is not None for _ in range(50))

    def test_key_filter(self):
        spec = FaultSpec("site", "fail", keys={"victim"})
        with ChaosEngine(0, [spec]):
            assert chaos_point("site", key="bystander") is None
            assert chaos_point("site", key="victim") is not None

    def test_max_fires(self):
        with ChaosEngine(0, [FaultSpec("s", "fail", max_fires=2)]):
            fires = [chaos_point("s") is not None for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_ledger_replays_bit_identically(self):
        specs = [FaultSpec("s.one", "fail", rate=0.4),
                 FaultSpec("s.two", "torn", rate=0.2)]

        def run():
            with ChaosEngine(123, specs) as engine:
                for i in range(200):
                    chaos_point("s.one", key=str(i % 7))
                    chaos_point("s.two", key=str(i % 3))
                return engine.ledger

        first, second = run(), run()
        assert first == second
        assert len(first) > 0
        with ChaosEngine(124, specs) as engine:
            for i in range(200):
                chaos_point("s.one", key=str(i % 7))
                chaos_point("s.two", key=str(i % 3))
            assert engine.ledger != first

    def test_nested_install_rejected(self):
        with ChaosEngine(0, []):
            with pytest.raises(RuntimeError):
                ChaosEngine(1, []).__enter__()
        assert active_engine() is None

    def test_inject_decorator(self):
        @inject(0, [FaultSpec("deco.site", "fail", rate=1.0)])
        def probed():
            return chaos_point("deco.site")

        assert probed() is not None
        assert chaos_point("deco.site") is None   # uninstalled after

    def test_torn_write_leaves_exact_prefix(self, tmp_path):
        data = bytes(range(200))
        target = tmp_path / "f.bin"
        spec = FaultSpec("io.write", "torn", param=57, max_fires=1)
        with ChaosEngine(0, [spec]):
            with pytest.raises(InjectedFault):
                atomic_write_bytes(target, data)
        assert target.read_bytes() == data[:57]
        # The same call after the fault budget completes atomically.
        with ChaosEngine(0, [spec]):
            pass
        atomic_write_bytes(target, data)
        assert target.read_bytes() == data


# ---------------------------------------------------------------------------
# Stream fault injection
# ---------------------------------------------------------------------------
class TestChaosPingStream:
    def _pings(self, n=40):
        from repro.stream.replay import Ping
        return [Ping("t1", "d0", 32.0 + 0.001 * i, 120.9, 30.0 * i)
                for i in range(n)]

    def test_identity_without_engine(self):
        pings = self._pings()
        assert chaos_ping_stream(pings) == pings

    def test_faults_are_additive_and_deterministic(self):
        pings = self._pings()
        specs = [FaultSpec("stream.ping", "corrupt", rate=0.2),
                 FaultSpec("stream.ping", "duplicate", rate=0.2),
                 FaultSpec("stream.ping", "skew", rate=0.2)]
        with ChaosEngine(5, specs):
            first = chaos_ping_stream(pings, reorder_capacity=8)
        with ChaosEngine(5, specs):
            second = chaos_ping_stream(pings, reorder_capacity=8)
        assert first == second                    # deterministic
        assert len(first) > len(pings)            # something injected
        # Every real ping survives, in order: faults only ever add.
        it = iter(first)
        assert all(p in it for p in pings)

    def test_skew_respects_reorder_horizon(self):
        pings = self._pings(n=10)
        with ChaosEngine(1, [FaultSpec("stream.ping", "skew", rate=1.0)]):
            out = chaos_ping_stream(pings, reorder_capacity=16)
        # Never more than reorder_capacity pings seen: no skew injected.
        assert out == pings


# ---------------------------------------------------------------------------
# Crash-consistency fuzz: torn writes at every byte boundary
# ---------------------------------------------------------------------------
class TestTornWriteFuzz:
    def test_checkpoint_never_loads_garbage(self, tmp_path):
        """Sweep the torn-write cut over every byte of the array file.

        Protocol per cut ``k``: restore a known-good checkpoint, then
        crash a re-save mid-write so the array file holds exactly the
        first ``k`` bytes of the *new* payload while the metadata still
        describes the old one.  ``load`` must either return a checkpoint
        bit-identical to a fully-written one or raise
        :class:`CheckpointCorruptedError` — never parse the torn bytes.
        """
        rng = np.random.default_rng(0)
        module = Linear(2, 2, rng=rng)
        manager = CheckpointManager(tmp_path, strict=True)
        manager.save(epoch=1, modules={"m": module})
        good_npz = manager.arrays_path.read_bytes()
        good_meta = manager.meta_path.read_bytes()
        good_state = manager.load()
        npz_name = manager.arrays_path.name
        outcomes = {"loaded": 0, "rejected": 0}
        for cut in range(len(good_npz) + 1):
            manager.arrays_path.write_bytes(good_npz)
            manager.meta_path.write_bytes(good_meta)
            spec = FaultSpec("io.write", "torn", keys={npz_name},
                             param=cut, max_fires=1)
            with ChaosEngine(0, [spec]):
                with pytest.raises(InjectedFault):
                    manager.save(epoch=2, modules={"m": module})
            try:
                state = manager.load()
            except CheckpointCorruptedError:
                outcomes["rejected"] += 1
                continue
            outcomes["loaded"] += 1
            # Loadable implies bit-exact agreement with the good slot.
            assert state.epoch == good_state.epoch
            for name, arrays in good_state.module_states.items():
                for key, value in arrays.items():
                    np.testing.assert_array_equal(
                        state.module_states[name][key], value)
        # The sweep must actually exercise the rejection path; a full
        # (cut == size) write may legitimately load when the re-saved
        # bytes match the metadata's digest.
        assert outcomes["rejected"] >= len(good_npz) - 1

    def test_torn_metadata_never_parses_as_checkpoint(self, tmp_path):
        """Same sweep over the JSON metadata file."""
        module = Linear(2, 1, rng=np.random.default_rng(1))
        manager = CheckpointManager(tmp_path, strict=True)
        manager.save(epoch=3, modules={"m": module})
        meta_size = len(manager.meta_path.read_bytes())
        meta_name = manager.meta_path.name
        loaded = 0
        for cut in range(meta_size + 1):
            spec = FaultSpec("io.write", "torn", keys={meta_name},
                             param=cut, max_fires=1)
            with ChaosEngine(0, [spec]):
                with pytest.raises(InjectedFault):
                    manager.save(epoch=3, modules={"m": module})
            try:
                state = manager.load()
            except CheckpointCorruptedError:
                continue
            loaded += 1
            assert state.epoch == 3
        # Only a complete JSON document can load; at most the full-size
        # cut (and trivially-empty never) parses.
        assert loaded <= 1

    def test_session_spill_restores_bit_exact_or_degrades(self, tmp_path):
        """Sweep every torn prefix of a session spill file.

        A new manager pointed at the damaged directory must either
        restore the session bit-exact (full prefix) or open a fresh
        session with the corruption counted and quarantined — never
        resurrect a half-written state.
        """
        checkpoint_dir = tmp_path / "spills"

        def build_manager():
            return FleetSessionManager(None, FleetConfig(
                max_sessions=1, checkpoint_dir=checkpoint_dir))

        manager = build_manager()
        for i in range(6):
            manager.ingest("truck-a", 32.0 + 0.001 * i, 120.9, 30.0 * i,
                           day="d0")
        manager.ingest("truck-b", 32.5, 120.5, 1.0, day="d0")  # spills a
        key = ("truck-a", "d0")
        path = manager._checkpoint_path(key)
        good = path.read_bytes()
        good_state = manager.session("truck-a", "d0").state()
        restored, degraded = 0, 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for cut in range(len(good) + 1):
                path.write_bytes(good[:cut])
                fresh = build_manager()
                session = fresh.session("truck-a", "d0")
                if fresh.counters.sessions_restored:
                    restored += 1
                    assert session.state() == good_state    # bit-exact
                else:
                    degraded += 1
                    assert fresh.counters.restore_failures == 1
                    assert "truck-a|d0" in fresh.quarantine
                    assert session.counters.pings_ingested == 0
        assert restored == 1          # only the complete file
        assert degraded == len(good)  # every torn prefix


# ---------------------------------------------------------------------------
# The fleet chaos soak (50 truck-days)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def soak_world():
    from repro.chaos.soak import _tiny_detector, build_soak_fleet_data
    world, dataset = build_soak_fleet_data()
    detector = _tiny_detector(world, dataset.samples)
    return dataset.samples, detector


@pytest.fixture(scope="module")
def soak_reports(soak_world):
    samples, detector = soak_world
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        first = run_chaos_soak(seed=7, samples=samples, detector=detector)
        second = run_chaos_soak(seed=7, samples=samples, detector=detector)
    return first, second


class TestChaosSoak:
    def test_healthy_trucks_converge(self, soak_reports):
        report, _ = soak_reports
        healthy = report["healthy"]
        assert healthy["mismatched"] == []
        assert healthy["matched"] == healthy["total"] == 49
        assert report["truck_days"] == 50

    def test_faults_actually_fired(self, soak_reports):
        report, _ = soak_reports
        sites = {f["site"] for f in report["ledger"]}
        assert {"stream.ping", "io.write", "io.read", "parallel.task",
                "fleet.snapshot"} <= sites
        assert report["pings"]["injected"] > 0

    def test_poison_is_quarantined_with_replayable_state(self,
                                                         soak_reports):
        report, _ = soak_reports
        poison = report["poison"]
        assert poison["quarantined"]
        assert poison["replayable"]
        assert poison["stray_quarantined_keys"] == []
        assert report["fleet"]["fleet"]["sessions_quarantined"] >= 1

    def test_supervised_parallel_stage_recovered(self, soak_reports):
        report, _ = soak_reports
        assert report["parallel"]["ok"]
        assert report["parallel"]["counters"].get("retries", 0) >= 1

    def test_same_seed_same_ledger_same_verdicts(self, soak_reports):
        first, second = soak_reports
        assert first["ledger"] == second["ledger"]
        assert first["verdict_digest"] == second["verdict_digest"]
        assert first["quarantine"] == second["quarantine"]

    def test_overall_verdict(self, soak_reports):
        report, _ = soak_reports
        assert report["ok"]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(os.system(f"python -m pytest -x -q {__file__}"))
