"""Tests for grouping, label processing, detectors, merging, and training."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (DetectorSample, DetectorTrainer,
                             DetectorTrainingConfig, GroupDetector,
                             IndependentDetector, IndependentDetectorTrainer,
                             argmax_pair, build_backward_group,
                             build_forward_group, enumerate_pairs,
                             index_to_pair, merge_distributions,
                             pair_to_index, smooth_label)

RNG = np.random.default_rng(53)


def candidate_count(n):
    return n * (n - 1) // 2


class TestPairIndexing:
    def test_enumerate_matches_paper_table2(self):
        pairs = enumerate_pairs(5)
        assert pairs[:4] == [(1, 2), (1, 3), (1, 4), (1, 5)]
        assert pairs[4:7] == [(2, 3), (2, 4), (2, 5)]
        assert pairs[-1] == (4, 5)
        assert len(pairs) == 10

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 14))
    def test_pair_index_roundtrip(self, n):
        for index, pair in enumerate(enumerate_pairs(n)):
            assert pair_to_index(n, pair) == index
            assert index_to_pair(n, index) == pair

    def test_invalid_pairs_rejected(self):
        with pytest.raises(ValueError):
            pair_to_index(5, (3, 3))
        with pytest.raises(ValueError):
            pair_to_index(5, (0, 2))
        with pytest.raises(ValueError):
            index_to_pair(5, 10)


class TestGroups:
    def test_forward_group_structure(self):
        n = 5
        cvecs = RNG.normal(size=(candidate_count(n), 8))
        group = build_forward_group(cvecs, n)
        assert len(group.subgroups) == n - 1
        assert [len(s) for s in group.subgroups] == [4, 3, 2, 1]
        # g_1 = <(1,2), (1,3), (1,4), (1,5)> — ascending ending index.
        np.testing.assert_array_equal(group.index_maps[0], [0, 1, 2, 3])
        assert group.num_candidates == 10

    def test_backward_group_structure(self):
        n = 5
        cvecs = RNG.normal(size=(candidate_count(n), 8))
        group = build_backward_group(cvecs, n)
        assert len(group.subgroups) == n - 1
        assert [len(s) for s in group.subgroups] == [1, 2, 3, 4]
        # ḡ_5 = <(4,5), (3,5), (2,5), (1,5)> — descending starting index.
        expected = [pair_to_index(n, p)
                    for p in [(4, 5), (3, 5), (2, 5), (1, 5)]]
        np.testing.assert_array_equal(group.index_maps[-1], expected)

    def test_groups_cover_all_candidates_once(self):
        n = 7
        cvecs = RNG.normal(size=(candidate_count(n), 4))
        for builder in (build_forward_group, build_backward_group):
            group = builder(cvecs, n)
            indices = np.sort(group.flat_indices())
            np.testing.assert_array_equal(indices,
                                          np.arange(candidate_count(n)))

    def test_subgroup_contents_match_cvecs(self):
        n = 4
        cvecs = RNG.normal(size=(candidate_count(n), 3))
        group = build_backward_group(cvecs, n)
        for matrix, indices in zip(group.subgroups, group.index_maps):
            np.testing.assert_array_equal(matrix, cvecs[indices])

    def test_validation(self):
        with pytest.raises(ValueError):
            build_forward_group(RNG.normal(size=(5, 3)), 5)  # wrong count
        with pytest.raises(ValueError):
            build_forward_group(RNG.normal(size=(0, 3)), 1)


class TestLabels:
    def test_smooth_label_sums_to_one(self):
        label = smooth_label(10, 3)
        assert label.sum() == pytest.approx(1.0)
        assert label.argmax() == 3
        assert (label > 0).all()

    def test_epsilon_entries(self):
        label = smooth_label(5, 0, epsilon=1e-4)
        np.testing.assert_allclose(label[1:], np.full(4, 1e-4))
        assert label[0] == pytest.approx(1.0 - 4e-4)

    def test_single_candidate(self):
        label = smooth_label(1, 0)
        np.testing.assert_allclose(label, [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            smooth_label(5, 5)
        with pytest.raises(ValueError):
            smooth_label(0, 0)
        with pytest.raises(ValueError):
            smooth_label(5, 0, epsilon=0.5)


class TestMerge:
    def test_merge_rescales_to_unit_interval(self):
        merged = merge_distributions(np.array([0.1, 0.5, 0.4]),
                                     np.array([0.2, 0.6, 0.2]))
        assert merged.min() == 0.0
        assert merged.max() == 1.0
        assert merged.argmax() == 1

    def test_merge_single_distribution(self):
        merged = merge_distributions(np.array([0.2, 0.8]))
        np.testing.assert_allclose(merged, [0.0, 1.0])

    def test_merge_constant_distribution(self):
        merged = merge_distributions(np.array([0.5, 0.5]))
        np.testing.assert_allclose(merged, [0.5, 0.5])

    def test_merge_validation(self):
        with pytest.raises(ValueError):
            merge_distributions(np.zeros((2, 2)))

    def test_argmax_pair(self):
        pairs = enumerate_pairs(3)
        assert argmax_pair(np.array([0.1, 0.9, 0.3]), pairs) == (1, 3)
        with pytest.raises(ValueError):
            argmax_pair(np.array([1.0]), pairs)


class TestDetectors:
    def test_flat_softmax_sums_to_one_over_group(self):
        n = 5
        cvecs = RNG.normal(size=(candidate_count(n), 16))
        detector = GroupDetector(input_dim=16, hidden_size=8, num_layers=2,
                                 rng=RNG)
        probs = detector(build_forward_group(cvecs, n)).numpy()
        assert probs.shape == (candidate_count(n),)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_subgroup_softmax_sums_per_subgroup(self):
        n = 5
        cvecs = RNG.normal(size=(candidate_count(n), 16))
        detector = GroupDetector(input_dim=16, hidden_size=8, num_layers=2,
                                 rng=RNG, subgroup_softmax=True)
        group = build_forward_group(cvecs, n)
        probs = detector(group).numpy()
        # Each forward subgroup's probabilities sum to 1 (literal Eq. 10).
        for indices in group.index_maps:
            assert probs[indices].sum() == pytest.approx(1.0)

    def test_group_detector_backward_group(self):
        n = 4
        cvecs = RNG.normal(size=(candidate_count(n), 16))
        detector = GroupDetector(input_dim=16, hidden_size=8, num_layers=1,
                                 rng=RNG, subgroup_softmax=True)
        group = build_backward_group(cvecs, n)
        probs = detector(group).numpy()
        for indices in group.index_maps:
            assert probs[indices].sum() == pytest.approx(1.0)

    def test_group_detector_rejects_wrong_dim(self):
        detector = GroupDetector(input_dim=16, hidden_size=8, num_layers=1,
                                 rng=RNG)
        group = build_forward_group(RNG.normal(size=(3, 8)), 3)
        with pytest.raises(ValueError):
            detector(group)

    def test_independent_detector_range(self):
        detector = IndependentDetector(input_dim=16, rng=RNG)
        probs = detector(RNG.normal(size=(7, 16))).numpy()
        assert probs.shape == (7,)
        assert ((probs > 0) & (probs < 1)).all()

    def test_independent_detector_rejects_wrong_dim(self):
        detector = IndependentDetector(input_dim=16, rng=RNG)
        with pytest.raises(ValueError):
            detector(RNG.normal(size=(3, 8)))


def synthetic_detector_samples(num_samples=40, n=4, dim=16, seed=0):
    """Toy detection problem: the target candidate's c-vec has a marker."""
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(num_samples):
        count = candidate_count(n)
        cvecs = rng.normal(0.0, 0.3, size=(count, dim))
        target = int(rng.integers(count))
        cvecs[target, :4] += 2.0  # distinctive signature
        samples.append(DetectorSample(cvecs, n, target))
    return samples


class TestTraining:
    def test_detector_sample_validation(self):
        with pytest.raises(ValueError):
            DetectorSample(RNG.normal(size=(5, 4)), 4, 0)  # wrong count
        with pytest.raises(ValueError):
            DetectorSample(RNG.normal(size=(6, 4)), 4, 6)  # bad target

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorTrainingConfig(epochs=0)

    def test_pair_training_learns_toy_problem(self):
        samples = synthetic_detector_samples()
        rng = np.random.default_rng(1)
        forward = GroupDetector(input_dim=16, hidden_size=16, num_layers=2,
                                rng=rng)
        backward = GroupDetector(input_dim=16, hidden_size=16, num_layers=2,
                                 rng=rng)
        trainer = DetectorTrainer(forward, backward, DetectorTrainingConfig(
            epochs=10, learning_rate=3e-3, batch_size=8, patience=10))
        hist_f, hist_b = trainer.fit(samples)
        assert hist_f.final_loss < hist_f.epoch_losses[0]
        assert hist_b.final_loss < hist_b.epoch_losses[0]
        # The trained pair should now solve unseen toy samples.
        test_samples = synthetic_detector_samples(num_samples=10, seed=99)
        hits = 0
        for sample in test_samples:
            pf = forward(build_forward_group(sample.cvecs, 4)).numpy()
            pb = backward(build_backward_group(sample.cvecs, 4)).numpy()
            if int(np.argmax(merge_distributions(pf, pb))) == \
                    sample.target_index:
                hits += 1
        assert hits >= 7

    def test_independent_training_reduces_loss(self):
        samples = synthetic_detector_samples(num_samples=20)
        detector = IndependentDetector(input_dim=16,
                                       rng=np.random.default_rng(2))
        trainer = IndependentDetectorTrainer(
            detector, DetectorTrainingConfig(epochs=6, learning_rate=3e-3,
                                             batch_size=8, patience=10))
        history = trainer.fit(samples)
        assert history.final_loss < history.epoch_losses[0]

    def test_fit_rejects_empty(self):
        forward = GroupDetector(input_dim=4, hidden_size=4, num_layers=1)
        backward = GroupDetector(input_dim=4, hidden_size=4, num_layers=1)
        with pytest.raises(ValueError):
            DetectorTrainer(forward, backward).fit([])
        with pytest.raises(ValueError):
            IndependentDetectorTrainer(IndependentDetector(4)).fit([])
