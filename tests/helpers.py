"""Shared test utilities."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Tensor


def numeric_grad(fn: Callable[[np.ndarray], float], x: np.ndarray,
                 eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(op: Callable[[Tensor], Tensor], x: np.ndarray,
                   atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert autograd gradient of ``sum(op(x))`` matches finite differences."""
    x = np.asarray(x, dtype=np.float64)

    tensor = Tensor(x.copy(), requires_grad=True)
    out = op(tensor)
    out.sum().backward()
    analytic = tensor.grad

    def scalar(values: np.ndarray) -> float:
        return float(op(Tensor(values)).sum().numpy())

    numeric = numeric_grad(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
