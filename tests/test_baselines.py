"""Tests for the SP-R, SP-GRU, and SP-LSTM baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (SPNNDetector, SPNNTrainingConfig, SPRDetector,
                             StayPointClassifier, WhiteList, greedy_selection)
from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.features import (CandidateFeaturizer, FeatureExtractor,
                            ZScoreNormalizer)
from repro.model import LoadedLabel, TimeInterval
from repro.nn import Tensor
from repro.processing import RawTrajectoryProcessor


@pytest.fixture(scope="module")
def world_and_processed():
    world = SyntheticWorld(WorldConfig(seed=4))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=8, num_trucks=4, seed=4), world=world)
    processor = RawTrajectoryProcessor()
    processed = []
    for sample in dataset:
        result = processor.process(sample.trajectory, sample.label)
        if result is not None and result.label_pair is not None:
            processed.append((result, sample.label))
    featurizer = CandidateFeaturizer(FeatureExtractor(world.pois),
                                     ZScoreNormalizer())
    featurizer.fit_normalizer([p.cleaned for p, _ in processed])
    return world, processed, featurizer


class TestGreedySelection:
    def test_two_lu_stays(self):
        assert greedy_selection(5, [False, True, False, True, False]) == (2, 4)

    def test_many_lu_stays_uses_first_and_last(self):
        assert greedy_selection(4, [True, True, True, True]) == (1, 4)

    def test_default_fallback_zero_flags(self):
        assert greedy_selection(6, [False] * 6) == (1, 6)

    def test_default_fallback_one_flag(self):
        assert greedy_selection(6, [False, True] + [False] * 4) == (1, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_selection(1, [True])
        with pytest.raises(ValueError):
            greedy_selection(3, [True])


class TestWhiteList:
    def make_label(self, lat1, lng1, lat2, lng2):
        return LoadedLabel(TimeInterval(0, 10), TimeInterval(20, 30),
                           lat1, lng1, lat2, lng2)

    def test_add_and_match(self):
        wl = WhiteList()
        wl.add_label(self.make_label(32.0, 120.9, 32.1, 121.0))
        assert len(wl) == 2
        assert wl.matches(32.0005, 120.9, radius_m=500.0)
        assert not wl.matches(32.05, 120.9, radius_m=500.0)

    def test_empty_matches_nothing(self):
        assert not WhiteList().matches(32.0, 120.9, 500.0)


class TestSPR:
    def test_radius_validation(self):
        with pytest.raises(ValueError):
            SPRDetector(search_radius_m=0)

    def test_fit_and_detect(self, world_and_processed):
        _, processed, _ = world_and_processed
        detector = SPRDetector()
        detector.fit(processed)
        assert len(detector.white_list) == 2 * len(processed)
        for result, _ in processed[:3]:
            pair = detector.detect(result)
            assert 1 <= pair[0] < pair[1] <= result.num_stay_points

    def test_detect_with_empty_white_list_uses_default(self,
                                                       world_and_processed):
        _, processed, _ = world_and_processed
        detector = SPRDetector()
        result = processed[0][0]
        assert detector.detect(result) == (1, result.num_stay_points)

    def test_training_trajectories_often_hit(self, world_and_processed):
        """On its own training data SP-R should match many endpoints."""
        _, processed, _ = world_and_processed
        detector = SPRDetector()
        detector.fit(processed)
        hits = sum(detector.detect(p) == p.label_pair for p, _ in processed)
        assert hits >= len(processed) // 3


class TestStayPointClassifier:
    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            StayPointClassifier(cell="transformer")

    @pytest.mark.parametrize("cell", ["gru", "lstm"])
    def test_forward_shape_and_range(self, cell):
        classifier = StayPointClassifier(cell=cell, input_dim=8,
                                         hidden_size=16)
        rng = np.random.default_rng(0)
        probs = classifier(Tensor(rng.normal(size=(5, 7, 8))),
                           np.array([7, 3, 1, 5, 2]))
        assert probs.shape == (5,)
        assert ((probs.numpy() > 0) & (probs.numpy() < 1)).all()


class TestSPNN:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SPNNTrainingConfig(epochs=0)

    def test_fit_rejects_empty(self, world_and_processed):
        _, _, featurizer = world_and_processed
        detector = SPNNDetector("gru", featurizer)
        with pytest.raises(ValueError):
            detector.fit([])

    @pytest.mark.parametrize("cell", ["gru", "lstm"])
    def test_fit_reduces_loss_and_detects(self, world_and_processed, cell):
        _, processed, featurizer = world_and_processed
        training = [(p, p.label_pair) for p, _ in processed]
        detector = SPNNDetector(
            cell, featurizer,
            SPNNTrainingConfig(epochs=4, learning_rate=3e-3, seed=1))
        history = detector.fit(training)
        assert history.final_loss < history.epoch_losses[0]
        pair = detector.detect(processed[0][0])
        assert 1 <= pair[0] < pair[1] <= processed[0][0].num_stay_points

    def test_classify_stay_point_probability(self, world_and_processed):
        _, processed, featurizer = world_and_processed
        detector = SPNNDetector("lstm", featurizer,
                                SPNNTrainingConfig(epochs=1, seed=0))
        detector.fit([(p, p.label_pair) for p, _ in processed[:2]])
        prob = detector.classify_stay_point(processed[0][0].stay_points[0])
        assert 0.0 < prob < 1.0
