"""Serve-layer tests: sharded convergence, routing purity, backpressure,
restart-under-fire, the uniform config surface, the ``repro.api``
covenant, and the deprecation shims on the legacy entrypoints."""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosEngine, FaultSpec
from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.pipeline import LEAD, LEADConfig
from repro.serve import (FleetService, ServeConfig, ServeError, shard_for)
from repro.stream import (FleetConfig, FleetSessionManager,
                          dataset_ping_stream)


def tiny_lead_config(**overrides) -> LEADConfig:
    base = dict(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    base.update(overrides)
    return LEADConfig(**base)


@pytest.fixture(scope="module")
def world_and_data():
    world = SyntheticWorld(WorldConfig(seed=13))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=50, num_trucks=20, seed=13),
        world=world)
    return world, dataset


@pytest.fixture(scope="module")
def fitted(world_and_data):
    world, dataset = world_and_data
    lead = LEAD(world.pois, tiny_lead_config())
    lead.fit(dataset.samples[:8])
    return lead


@pytest.fixture(scope="module")
def pings(world_and_data):
    _, dataset = world_and_data
    return dataset_ping_stream(dataset.samples)


@pytest.fixture(scope="module")
def serial_verdicts(fitted, pings):
    """Reference final verdicts from a serial single-manager replay."""
    manager = FleetSessionManager(fitted, FleetConfig())
    for ping in pings:
        manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                       day=ping.day)
    return {(v.truck_id, v.day): v for v in manager.flush_all()}


def assert_same_verdict(sharded, serial) -> None:
    """The serve-layer convergence predicate: same pair, same
    confidence, same provenance tier, allclose distribution."""
    assert sharded.pair == serial.pair
    assert sharded.confidence == serial.confidence
    if serial.distribution is None:
        assert sharded.distribution is None
    else:
        assert np.allclose(sharded.distribution, serial.distribution,
                           rtol=1e-9, atol=0.0)
    if serial.provenance is not None:
        assert sharded.provenance.tier == serial.provenance.tier


def drain_service(service, pings, *, batch=500, ticks=True) -> dict:
    index = 0
    for start in range(0, len(pings), batch):
        result = service.submit(pings[start:start + batch])
        while result.rejected:
            service.wait()
            result = service.submit(result.rejected_pings)
        index += 1
        if ticks and index % 10 == 0:
            service.tick()
    return {(v.truck_id, v.day): v for v in service.drain()}


# ---------------------------------------------------------------------------
# 1. Sharded == serial convergence (the tentpole contract)
# ---------------------------------------------------------------------------
class TestShardedConvergence:
    def test_process_backend_matches_serial(self, fitted, pings,
                                            serial_verdicts):
        config = ServeConfig(num_shards=4)
        with FleetService(fitted, config=config) as service:
            sharded = drain_service(service, pings)
        assert set(sharded) == set(serial_verdicts)
        assert len(sharded) == 50
        for key, serial in serial_verdicts.items():
            assert_same_verdict(sharded[key], serial)

    def test_inline_backend_matches_serial(self, fitted, pings,
                                           serial_verdicts):
        config = ServeConfig(num_shards=3, backend="inline")
        with FleetService(fitted, config=config) as service:
            sharded = drain_service(service, pings)
        assert set(sharded) == set(serial_verdicts)
        for key, serial in serial_verdicts.items():
            assert_same_verdict(sharded[key], serial)

    def test_worker_kill_converges(self, fitted, pings, serial_verdicts,
                                   tmp_path):
        """Chaos kills + an explicit midpoint SIGKILL: the shard restarts
        from its barrier snapshot, replays its journal, and still
        converges verdict for verdict."""
        config = ServeConfig(num_shards=4, checkpoint_dir=tmp_path,
                             checkpoint_every=8)
        specs = [FaultSpec(site="serve.worker", kind="kill", rate=0.1,
                           max_fires=2)]
        with FleetService(fitted, config=config) as service:
            with ChaosEngine(seed=7, specs=specs):
                batches = [pings[i:i + 500]
                           for i in range(0, len(pings), 500)]
                for i, batch in enumerate(batches):
                    if i == len(batches) // 2:
                        assert service.kill_worker(shard=1)
                    result = service.submit(batch)
                    while result.rejected:
                        service.wait()
                        result = service.submit(result.rejected_pings)
                sharded = {(v.truck_id, v.day): v
                           for v in service.drain()}
            stats = service.stats()
        assert stats["frontend"]["restarts"] >= 1
        assert set(sharded) == set(serial_verdicts)
        for key, serial in serial_verdicts.items():
            assert_same_verdict(sharded[key], serial)


# ---------------------------------------------------------------------------
# 2. Routing is a pure function of the truck id
# ---------------------------------------------------------------------------
class TestRouting:
    @settings(max_examples=200, deadline=None)
    @given(truck_id=st.text(min_size=1, max_size=40),
           num_shards=st.integers(min_value=1, max_value=64))
    def test_routing_is_pure_and_bounded(self, truck_id, num_shards):
        first = shard_for(truck_id, num_shards)
        assert 0 <= first < num_shards
        assert shard_for(truck_id, num_shards) == first

    def test_routing_is_stable_across_processes(self):
        # blake2b is keyless and seed-free, so these pins hold on any
        # machine, any PYTHONHASHSEED — restart safety depends on it.
        assert [shard_for(f"T{i:03d}", 4) for i in range(6)] \
            == [0, 2, 2, 0, 0, 2]

    def test_routing_spreads_trucks(self):
        shards = {shard_for(f"truck-{i:04d}", 4) for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_for("t", 0)


# ---------------------------------------------------------------------------
# 3. Admission control (backpressure, not buffering)
# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_overloaded_shard_rejects_then_recovers(self, pings):
        config = ServeConfig(num_shards=1, queue_high_water=1,
                             response_timeout_s=30.0)
        spec = FaultSpec(site="serve.worker", kind="hang", rate=1.0,
                         max_fires=1, param=0.6)
        feed = pings[:600]
        with FleetService(None, config=config) as service:
            with ChaosEngine(seed=3, specs=[spec]):
                first = service.submit(feed[:200])     # worker hangs
                assert first.accepted == 200
                second = service.submit(feed[200:400])
                assert second.rejected == 200
                assert second.accepted == 0
                assert any("backpressure" in r for r in second.reasons)
                service.wait()
                retry = service.submit(second.rejected_pings)
                assert retry.rejected == 0
                service.wait()   # high water 1: drain before the next batch
                third = service.submit(feed[400:])
                assert third.rejected == 0
            service.wait()
            stats = service.stats()
        assert stats["frontend"]["rejected_pings"] == 200
        assert stats["frontend"]["submitted_pings"] == 800
        assert stats["frontend"]["accepted_pings"] == 600

    def test_rejected_pings_resubmit_preserves_per_truck_order(self):
        config = ServeConfig(num_shards=1, backend="inline")
        rows = [("T1", "d", 1.0 + i * 1e-4, 2.0, float(i))
                for i in range(10)]
        with FleetService(None, config=config) as service:
            result = service.submit(rows)
            assert result.rejected == 0   # inline never backpressures
            stats = service.stats()
        fleet = stats["shards"]["0"]["fleet"]
        assert fleet["sessions"]["pings_ingested"] == 10


# ---------------------------------------------------------------------------
# 4. Uniform config surface (from_dict / to_dict, unknown keys fail)
# ---------------------------------------------------------------------------
class TestConfigSurface:
    def test_serve_config_round_trips(self):
        config = ServeConfig(num_shards=7, queue_high_water=9,
                             checkpoint_dir="/tmp/x", checkpoint_every=3,
                             fleet=FleetConfig(max_sessions=5))
        clone = ServeConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.fleet.max_sessions == 5

    def test_lead_config_round_trips(self):
        config = tiny_lead_config(detector_hidden=32)
        clone = LEADConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.encoder_training.epochs == 1

    @pytest.mark.parametrize("cls", [ServeConfig, LEADConfig,
                                     FleetConfig])
    def test_unknown_keys_fail_loudly(self, cls):
        with pytest.raises(ValueError, match="not_a_knob"):
            cls.from_dict({"not_a_knob": 1})

    def test_nested_unknown_key_fails(self):
        with pytest.raises(ValueError, match="bogus"):
            ServeConfig.from_dict({"fleet": {"bogus": 2}})

    def test_serve_config_validates(self):
        with pytest.raises(ValueError):
            ServeConfig(num_shards=0)
        with pytest.raises(ValueError):
            ServeConfig(backend="threads")


# ---------------------------------------------------------------------------
# 5. The repro.api covenant
# ---------------------------------------------------------------------------
class TestApiFacade:
    def test_root_forwards_every_covenant_name(self):
        import repro
        import repro.api
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name), name

    def test_legacy_names_still_resolve(self):
        import repro
        assert repro.Trajectory is not None
        assert repro.TruckSession is not None

    def test_dir_covers_both_surfaces(self):
        import repro
        names = dir(repro)
        assert "FleetService" in names
        assert "Trajectory" in names

    def test_unknown_name_raises_attribute_error(self):
        import repro
        with pytest.raises(AttributeError):
            repro.definitely_not_a_name


# ---------------------------------------------------------------------------
# 6. Keyword-only covenant + deprecation shims
# ---------------------------------------------------------------------------
class TestEntrypointShims:
    def test_serve_apis_are_keyword_only(self):
        config = ServeConfig(num_shards=1, backend="inline")
        with FleetService(None, config=config) as service:
            with pytest.raises(TypeError):
                service.flush("T1", "day")     # day must be keyword
            with pytest.raises(TypeError):
                service.kill_worker(0)         # shard must be keyword

    def test_fleet_flush_positional_day_warns(self):
        manager = FleetSessionManager(None, FleetConfig())
        manager.ingest("T1", 1.0, 2.0, 0.0, "d0")
        with pytest.warns(DeprecationWarning, match="flush"):
            old = manager.flush("T1", "d0")
        manager2 = FleetSessionManager(None, FleetConfig())
        manager2.ingest("T1", 1.0, 2.0, 0.0, "d0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = manager2.flush("T1", day="d0")
        assert old.pair == new.pair

    def test_detect_batch_positional_direction_warns(self, fitted):
        with pytest.warns(DeprecationWarning, match="direction"):
            assert fitted.detect_processed_batch([], "both") == []
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fitted.detect_processed_batch([]) == []
        with pytest.raises(TypeError):
            fitted.detect_processed_batch([], "both", "extra")

    def test_load_positional_strict_warns(self, world_and_data, fitted,
                                          tmp_path):
        world, _ = world_and_data
        fitted.save(tmp_path / "model")
        with pytest.warns(DeprecationWarning, match="strict"):
            lead = LEAD(world.pois, tiny_lead_config()).load(
                tmp_path / "model", True)
        assert lead.detect_processed_batch([]) == []

    def test_closed_service_rejects_calls(self):
        service = FleetService(None, config=ServeConfig(
            num_shards=1, backend="inline"))
        service.close()
        with pytest.raises(ServeError):
            service.submit([])
