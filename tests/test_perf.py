"""Tests for the throughput layer: caching, batching, parallel seeding.

Three contracts are nailed down here:

1. **Batched == per-trajectory.**  ``detect_batch`` /
   ``predict_distribution_batch`` / ``encode_candidates_batch`` return
   the same answers as their serial counterparts (``allclose`` at
   ``rtol=1e-9``), including degradation-tier provenance when detectors
   are knocked out.
2. **Cache correctness.**  The content-keyed segment cache serves
   repeated featurizations without recomputation, returns identical
   matrices, and invalidates itself when the normalizer refits.
3. **Schedule-independent randomness.**  Dataset generation with
   per-task seeding is bit-identical for any worker count.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.encoding.autoencoder import build_pair_indices
from repro.perf import (LRUCache, SegmentFeatureCache, compare_to_baseline,
                        effective_workers, parallel_map, spawn_rng)
from repro.pipeline import LEAD, LEADConfig


def tiny_lead_config(**overrides) -> LEADConfig:
    base = dict(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    base.update(overrides)
    return LEADConfig(**base)


@pytest.fixture(scope="module")
def world_and_data():
    world = SyntheticWorld(WorldConfig(seed=6))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=12, num_trucks=5, seed=6),
        world=world)
    return world, dataset


@pytest.fixture(scope="module")
def fitted(world_and_data):
    world, dataset = world_and_data
    lead = LEAD(world.pois, tiny_lead_config())
    lead.fit(dataset.samples[:8])
    return lead, dataset


# ---------------------------------------------------------------------------
# 1. Batched inference == per-trajectory inference
# ---------------------------------------------------------------------------
class TestBatchedEquivalence:
    def test_encode_candidates_batch_matches_loop(self, fitted):
        lead, dataset = fitted
        processed = self._processed(lead, dataset)
        loop = [lead.encode_candidates(p) for p in processed]
        batched = lead.encode_candidates_batch(processed)
        assert len(batched) == len(loop)
        for single, merged in zip(loop, batched):
            assert merged.shape == single.shape
            assert np.allclose(single, merged, rtol=1e-9, atol=0.0)

    def test_predict_distribution_batch_matches_loop(self, fitted):
        lead, dataset = fitted
        processed = self._processed(lead, dataset)
        loop = [lead.predict_distribution(p) for p in processed]
        batched = lead.predict_distribution_batch(processed)
        for single, merged in zip(loop, batched):
            assert np.allclose(single, merged, rtol=1e-9, atol=0.0)

    def test_detect_batch_matches_detect(self, fitted):
        lead, dataset = fitted
        trajectories = [s.trajectory for s in dataset.samples[8:]]
        singles = [lead.detect(t) for t in trajectories]
        batched = lead.detect_batch(trajectories)
        assert len(batched) == len(singles)
        for single, merged in zip(singles, batched):
            assert (single is None) == (merged is None)
            if single is None:
                continue
            assert merged.pair == single.pair
            assert merged.provenance == single.provenance
            assert np.allclose(single.distribution, merged.distribution,
                               rtol=1e-9, atol=0.0)

    def test_detect_batch_degraded_provenance(self, world_and_data, fitted):
        """Knocking out a detector degrades batched results exactly like
        serial ones — same tier, same failure notes."""
        world, dataset = world_and_data
        lead, _ = fitted
        crippled = LEAD(world.pois, tiny_lead_config())
        # Share the trained state, then knock out the backward detector.
        crippled.featurizer.normalizer = lead.featurizer.normalizer
        crippled.autoencoder = lead.autoencoder
        crippled.forward_detector = lead.forward_detector
        crippled.backward_detector = None
        crippled._fitted = True
        trajectories = [s.trajectory for s in dataset.samples[8:]]
        singles = [crippled.detect(t) for t in trajectories]
        batched = crippled.detect_batch(trajectories)
        answered = 0
        for single, merged in zip(singles, batched):
            assert (single is None) == (merged is None)
            if single is None:
                continue
            answered += 1
            assert single.provenance.tier == "forward-only"
            assert merged.provenance == single.provenance
            assert any("tier 'both' failed" in note
                       for note in merged.provenance.notes)
            assert merged.pair == single.pair
        assert answered > 0

    def test_detect_batch_handles_hostile_entries(self, fitted):
        """A batch mixing valid and unsalvageable trajectories keeps
        slots aligned: None exactly where detect() says None."""
        lead, dataset = fitted
        good = dataset.samples[8].trajectory
        # Too few points to yield two stay points: detect() returns None.
        bad = type(good)(good.lats[:3], good.lngs[:3], good.ts[:3],
                         truck_id=good.truck_id, day=good.day)
        results = lead.detect_batch([bad, good, bad])
        assert results[0] is None and results[2] is None
        assert results[1] is not None
        assert results[1].pair == lead.detect(good).pair

    def test_empty_batch(self, fitted):
        lead, _ = fitted
        assert lead.detect_batch([]) == []
        assert lead.predict_distribution_batch([]) == []

    def test_score_indexed_bucketed_matches_padded(self):
        """Length-bucketed BiLSTM scoring == one globally padded pass."""
        from repro.detection.detectors import GroupDetector
        from repro.detection.grouping import forward_index_maps
        from repro.nn import Tensor, no_grad
        rng = np.random.default_rng(3)
        detector = GroupDetector(input_dim=8, hidden_size=8, num_layers=2,
                                 rng=np.random.default_rng(0))
        # Two merged "trajectories" with very different subgroup lengths.
        maps: list[np.ndarray] = []
        counts = []
        offset = 0
        for n in (4, 9):
            maps.extend(m + offset for m in forward_index_maps(n))
            counts.append(n * (n - 1) // 2)
            offset += counts[-1]
        cvecs = Tensor(rng.normal(size=(offset, 8)))
        segments = np.array(counts)
        with no_grad():
            padded = detector.score_indexed(cvecs, maps, segments=segments)
            bucketed = detector.score_indexed(cvecs, maps, segments=segments,
                                              bucket=True)
        assert np.allclose(padded.numpy(), bucketed.numpy(),
                           rtol=1e-9, atol=0.0)

    @staticmethod
    def _processed(lead, dataset):
        processed = [lead.processor.process(s.trajectory)
                     for s in dataset.samples[8:]]
        return [p for p in processed if p is not None]


# ---------------------------------------------------------------------------
# 2. Featurization cache
# ---------------------------------------------------------------------------
class TestSegmentFeatureCache:
    def test_featurize_twice_computes_once(self, fitted):
        lead, dataset = fitted
        processed = lead.processor.process(dataset.samples[8].trajectory)
        assert processed is not None
        lead.feature_cache.clear()
        stats = lead.feature_cache.stats
        base_misses = stats.misses
        first = lead._segments(processed)
        misses_after_first = stats.misses - base_misses
        assert misses_after_first == (len(processed.stay_points)
                                      + len(processed.move_points))
        hits_before = stats.hits
        second = lead._segments(processed)
        assert stats.misses - base_misses == misses_after_first  # no recompute
        assert stats.hits - hits_before == misses_after_first
        for a, b in zip(first[0] + first[1], second[0] + second[1]):
            assert a is b  # literally the cached object

    def test_content_keyed_across_objects(self, fitted):
        """A reloaded trajectory with identical bytes hits the same
        entries: the key is content, not object identity."""
        lead, dataset = fitted
        sample = dataset.samples[8]
        clone = type(sample).from_dict(
            json.loads(json.dumps(sample.to_dict())))
        p1 = lead.processor.process(sample.trajectory)
        p2 = lead.processor.process(clone.trajectory)
        lead.feature_cache.clear()
        lead._segments(p1)
        misses = lead.feature_cache.stats.misses
        lead._segments(p2)
        assert lead.feature_cache.stats.misses == misses  # all hits

    def test_normalizer_refit_invalidates(self, fitted):
        lead, dataset = fitted
        featurizer = lead.featurizer
        before = featurizer.context_fingerprint()
        mean, std = (featurizer.normalizer.mean_.copy(),
                     featurizer.normalizer.std_.copy())
        try:
            featurizer.normalizer.fit(
                np.random.default_rng(0).normal(size=(8, mean.shape[0])))
            assert featurizer.context_fingerprint() != before
        finally:
            featurizer.normalizer.mean_ = mean
            featurizer.normalizer.std_ = std
        assert featurizer.context_fingerprint() == before

    def test_disabled_cache_is_bit_identical(self, world_and_data, fitted):
        world, dataset = world_and_data
        lead, _ = fitted
        bare = LEAD(world.pois, tiny_lead_config(feature_cache_size=0))
        assert bare.feature_cache is None
        bare.featurizer.normalizer = lead.featurizer.normalizer
        processed = lead.processor.process(dataset.samples[8].trajectory)
        cached_stay, cached_move = lead._segments(processed)
        bare_stay, bare_move = bare._segments(processed)
        for a, b in zip(cached_stay + cached_move, bare_stay + bare_move):
            assert np.array_equal(a, b)

    def test_lru_bounds_and_stats(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh 'a'
        cache.put("c", 3)               # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_cache_pickles_empty(self, fitted):
        import pickle
        lead, _ = fitted
        assert len(lead.feature_cache) > 0
        clone = pickle.loads(pickle.dumps(lead.feature_cache))
        assert len(clone) == 0
        assert clone._lru.maxsize == lead.feature_cache._lru.maxsize


# ---------------------------------------------------------------------------
# 3. Deterministic parallelism
# ---------------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


class TestParallel:
    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=2) == \
            [x * x for x in items]

    def test_effective_workers(self):
        assert effective_workers(None) == 1
        assert effective_workers(0) == 1
        assert effective_workers(3) == 3
        assert effective_workers(-1) >= 1

    def test_spawn_rng_depends_only_on_key(self):
        a = spawn_rng(7, 3).random(4)
        b = spawn_rng(7, 3).random(4)
        c = spawn_rng(7, 4).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generate_dataset_worker_count_invariant(self):
        """--workers 2 produces a bit-identical dataset to serial
        (workers=1) generation: randomness is keyed by task, never by
        schedule."""
        def build(workers):
            return generate_dataset(
                DatasetConfig(num_trajectories=6, num_trucks=3, seed=11),
                world=SyntheticWorld(WorldConfig(seed=11)),
                workers=workers)
        serial = build(1)
        parallel = build(2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.trajectory.truck_id == b.trajectory.truck_id
            assert a.trajectory.day == b.trajectory.day
            assert np.array_equal(a.trajectory.lats, b.trajectory.lats)
            assert np.array_equal(a.trajectory.lngs, b.trajectory.lngs)
            assert np.array_equal(a.trajectory.ts, b.trajectory.ts)
            assert a.label.to_dict() == b.label.to_dict()

    def test_legacy_serial_path_unchanged(self):
        """workers=None keeps the original shared-stream realization
        (the datasets every cached artifact was built from)."""
        cfg = DatasetConfig(num_trajectories=4, num_trucks=2, seed=11)
        legacy = generate_dataset(cfg, world=SyntheticWorld(
            WorldConfig(seed=11)))
        keyed = generate_dataset(cfg, world=SyntheticWorld(
            WorldConfig(seed=11)), workers=1)
        assert not all(
            np.array_equal(a.trajectory.lats, b.trajectory.lats)
            for a, b in zip(legacy, keyed))

    def test_fit_workers_matches_serial(self, world_and_data, fitted):
        """The parallelizable offline stages feed training identically:
        a model fitted with workers=2 equals the serial one."""
        world, dataset = world_and_data
        serial_lead, _ = fitted
        parallel_lead = LEAD(world.pois, tiny_lead_config())
        parallel_lead.fit(dataset.samples[:8], workers=2)
        for name, module in serial_lead._detector_modules().items():
            other = parallel_lead._detector_modules()[name]
            for p, q in zip(module.parameters(), other.parameters()):
                assert np.allclose(p.data, q.data, rtol=1e-9, atol=1e-12)


# ---------------------------------------------------------------------------
# 4. Vectorized pair-index construction
# ---------------------------------------------------------------------------
class TestBuildPairIndices:
    def test_matches_loop_construction(self):
        pairs = [(1, 2), (1, 4), (2, 5), (3, 4), (2, 3)]
        sp_lengths, mp_lengths, sp_index, mp_index = \
            build_pair_indices(pairs)
        for row, (i, j) in enumerate(pairs):
            assert sp_lengths[row] == j - i + 1
            assert mp_lengths[row] == j - i
            expect_sp = list(range(i - 1, j))
            assert sp_index[row, :sp_lengths[row]].tolist() == expect_sp
            expect_mp = list(range(i - 1, j - 1))
            assert mp_index[row, :mp_lengths[row]].tolist() == expect_mp

    def test_adjacent_stay_pairs(self):
        pairs = [(1, 2), (2, 3), (3, 4)]
        sp_lengths, mp_lengths, sp_index, mp_index = \
            build_pair_indices(pairs)
        assert mp_lengths.tolist() == [1, 1, 1]
        assert mp_index.shape == (3, 1)
        assert sp_index.shape == (3, 2)

    def test_zero_move_lengths_do_not_crash(self):
        """Degenerate single-stay pairs have mp_length == 0 across the
        whole batch; the move index must still be a well-formed (N, 1)
        gather (fully masked) instead of crashing on ``max()`` of an
        empty width."""
        pairs = [(1, 1), (3, 3)]
        sp_lengths, mp_lengths, sp_index, mp_index = \
            build_pair_indices(pairs)
        assert sp_lengths.tolist() == [1, 1]
        assert mp_lengths.tolist() == [0, 0]
        assert mp_index.shape == (2, 1)
        assert (mp_index == 0).all()  # padded cells point at row 0


# ---------------------------------------------------------------------------
# 5. Regression-gate plumbing
# ---------------------------------------------------------------------------
class TestCompareToBaseline:
    PAYLOAD = {
        "scale": "tiny",
        "metrics": {"encode_single_tps": 100.0, "encode_batch_tps": 300.0,
                    "detect_single_tps": 50.0, "detect_batch_tps": 200.0},
        "equivalence": {"allclose": True, "max_abs_diff": 1e-15},
    }

    def test_self_comparison_passes(self):
        assert compare_to_baseline(self.PAYLOAD, self.PAYLOAD) == []

    def test_large_regression_fails(self):
        slow = json.loads(json.dumps(self.PAYLOAD))
        slow["metrics"]["detect_batch_tps"] = 50.0  # 4x below baseline
        failures = compare_to_baseline(slow, self.PAYLOAD,
                                       max_regression=2.0)
        assert len(failures) == 1 and "detect_batch_tps" in failures[0]

    def test_scale_mismatch_fails(self):
        other = json.loads(json.dumps(self.PAYLOAD))
        other["scale"] = "default"
        assert any("scale mismatch" in f
                   for f in compare_to_baseline(other, self.PAYLOAD))

    def test_equivalence_breakage_fails(self):
        broken = json.loads(json.dumps(self.PAYLOAD))
        broken["equivalence"]["allclose"] = False
        assert any("no longer matches" in f
                   for f in compare_to_baseline(broken, self.PAYLOAD))
