"""Tests for the trajectory data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import (CandidateTrajectory, GPSPoint, LoadedLabel,
                         MovePoint, StayPoint, TimeInterval, Trajectory)


def straight_trajectory(n=10, dt=120.0, truck_id="truck-1"):
    lats = 32.0 + np.arange(n) * 0.001
    lngs = np.full(n, 120.9)
    ts = np.arange(n) * dt
    return Trajectory(lats, lngs, ts, truck_id=truck_id, day="2020-09-01")


class TestTrajectory:
    def test_lengths_and_iteration(self):
        tr = straight_trajectory(5)
        assert len(tr) == 5
        points = list(tr)
        assert all(isinstance(p, GPSPoint) for p in points)
        assert points[0].t == 0.0

    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(ValueError):
            Trajectory([1.0, 2.0], [1.0, 2.0], [10.0, 5.0])

    def test_rejects_duplicate_timestamps(self):
        with pytest.raises(ValueError):
            Trajectory([1.0, 2.0], [1.0, 2.0], [5.0, 5.0])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Trajectory([1.0], [1.0, 2.0], [0.0])

    def test_slice_and_getitem(self):
        tr = straight_trajectory(10)
        sub = tr[2:5]
        assert isinstance(sub, Trajectory)
        assert len(sub) == 3
        assert sub.point(0).t == tr.point(2).t
        assert tr[3].lat == pytest.approx(32.003)

    def test_slice_rejects_step(self):
        with pytest.raises(ValueError):
            straight_trajectory(10)[::2]

    def test_duration_and_length(self):
        tr = straight_trajectory(10)
        assert tr.duration_s == pytest.approx(9 * 120.0)
        assert tr.length_m() > 0

    def test_segment_speeds(self):
        tr = straight_trajectory(5)
        speeds = tr.segment_speeds_kmh()
        assert speeds.shape == (4,)
        # ~111m per 0.001 deg lat over 120s -> ~3.3 km/h
        assert np.all((speeds > 2.0) & (speeds < 5.0))

    def test_dict_roundtrip(self):
        tr = straight_trajectory(4)
        tr2 = Trajectory.from_dict(tr.to_dict())
        np.testing.assert_array_equal(tr.lats, tr2.lats)
        assert tr2.truck_id == "truck-1"

    def test_point_distance(self):
        a = GPSPoint(32.0, 120.9, 0.0)
        b = GPSPoint(32.001, 120.9, 60.0)
        assert 100 < a.distance_m(b) < 120


class TestStayPoint:
    def test_properties(self):
        tr = straight_trajectory(10)
        sp = StayPoint(tr, 2, 5, ordinal=1)
        assert sp.num_points == 4
        assert sp.arrival_t == tr.point(2).t
        assert sp.departure_t == tr.point(5).t
        assert sp.duration_s == pytest.approx(3 * 120.0)
        lat, lng = sp.centroid
        assert lat == pytest.approx(tr.lats[2:6].mean())
        assert len(sp.subtrajectory()) == 4

    def test_rejects_bad_range(self):
        tr = straight_trajectory(5)
        with pytest.raises(ValueError):
            StayPoint(tr, 3, 2, ordinal=1)
        with pytest.raises(ValueError):
            StayPoint(tr, 0, 10, ordinal=1)
        with pytest.raises(ValueError):
            StayPoint(tr, 0, 1, ordinal=0)


class TestCandidateTrajectory:
    def make_parts(self, n_sp=4):
        tr = straight_trajectory(n_sp * 4)
        sps = [StayPoint(tr, i * 4, i * 4 + 1, ordinal=i + 1)
               for i in range(n_sp)]
        mps = [MovePoint(tr, sps[i].end, sps[i + 1].start, ordinal=i + 1)
               for i in range(n_sp - 1)]
        return tr, sps, mps

    def test_build_and_identity(self):
        _, sps, mps = self.make_parts()
        cand = CandidateTrajectory.build(sps, mps, 2, 4)
        assert cand.pair == (2, 4)
        assert cand.start_index == sps[1].start
        assert cand.end_index == sps[3].end
        assert cand.num_points == sps[3].end - sps[1].start + 1

    def test_segments_alternate(self):
        _, sps, mps = self.make_parts()
        cand = CandidateTrajectory.build(sps, mps, 1, 3)
        segments = cand.segments()
        assert len(segments) == 5
        assert isinstance(segments[0], StayPoint)
        assert isinstance(segments[1], MovePoint)
        assert isinstance(segments[-1], StayPoint)

    def test_build_rejects_bad_pairs(self):
        _, sps, mps = self.make_parts()
        with pytest.raises(ValueError):
            CandidateTrajectory.build(sps, mps, 3, 3)
        with pytest.raises(ValueError):
            CandidateTrajectory.build(sps, mps, 0, 2)
        with pytest.raises(ValueError):
            CandidateTrajectory.build(sps, mps, 1, 9)

    def test_constructor_validates_counts(self):
        _, sps, mps = self.make_parts()
        with pytest.raises(ValueError):
            CandidateTrajectory(tuple(sps[:2]), ())
        with pytest.raises(ValueError):
            CandidateTrajectory((sps[0],), ())

    def test_subtrajectory_spans_candidate(self):
        _, sps, mps = self.make_parts()
        cand = CandidateTrajectory.build(sps, mps, 1, 2)
        assert len(cand.subtrajectory()) == cand.num_points


class TestLabels:
    def test_interval_overlap(self):
        a = TimeInterval(0.0, 10.0)
        assert a.overlap_s(TimeInterval(5.0, 15.0)) == 5.0
        assert a.overlap_s(TimeInterval(20.0, 30.0)) == 0.0
        assert a.contains_t(10.0)
        assert not a.contains_t(10.1)
        assert a.duration_s == 10.0

    def test_interval_rejects_reversed(self):
        with pytest.raises(ValueError):
            TimeInterval(5.0, 1.0)

    def test_label_requires_order(self):
        with pytest.raises(ValueError):
            LoadedLabel(TimeInterval(100.0, 200.0), TimeInterval(50.0, 80.0),
                        0, 0, 0, 0)

    def test_to_ordinal_pair(self):
        tr = straight_trajectory(20)
        sps = [StayPoint(tr, 0, 2, 1),    # t in [0, 240]
               StayPoint(tr, 5, 8, 2),    # t in [600, 960]
               StayPoint(tr, 12, 15, 3)]  # t in [1440, 1800]
        label = LoadedLabel(TimeInterval(600.0, 960.0),
                            TimeInterval(1400.0, 1700.0), 0, 0, 0, 0)
        assert label.to_ordinal_pair(sps) == (2, 3)

    def test_to_ordinal_pair_missing_overlap(self):
        tr = straight_trajectory(20)
        sps = [StayPoint(tr, 0, 2, 1)]
        label = LoadedLabel(TimeInterval(5000.0, 6000.0),
                            TimeInterval(7000.0, 8000.0), 0, 0, 0, 0)
        assert label.to_ordinal_pair(sps) is None

    def test_to_ordinal_pair_same_stay_rejected(self):
        tr = straight_trajectory(20)
        sps = [StayPoint(tr, 0, 10, 1)]
        label = LoadedLabel(TimeInterval(0.0, 300.0),
                            TimeInterval(600.0, 900.0), 0, 0, 0, 0)
        # Both intervals map to the single stay point -> invalid pair.
        assert label.to_ordinal_pair(sps) is None

    def test_label_dict_roundtrip(self):
        label = LoadedLabel(TimeInterval(0.0, 10.0), TimeInterval(20.0, 30.0),
                            32.0, 120.9, 32.1, 121.0)
        again = LoadedLabel.from_dict(label.to_dict())
        assert again == label
