"""Tests for feature extraction, normalization, and candidate sequences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DatasetConfig, POI, POIDatabase, POI_CATEGORIES,
                        generate_dataset)
from repro.features import (CandidateFeaturizer, FEATURE_DIM, FeatureConfig,
                            FeatureExtractor, SegmentKind, ZScoreNormalizer,
                            subsample_indices)
from repro.processing import RawTrajectoryProcessor

RNG = np.random.default_rng(31)


class TestNormalizer:
    def test_fit_transform_standardizes(self):
        x = RNG.normal(loc=5.0, scale=3.0, size=(500, 4))
        z = ZScoreNormalizer().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), np.ones(4), atol=1e-9)

    def test_constant_column_passthrough(self):
        x = np.ones((10, 2))
        x[:, 1] = RNG.normal(size=10)
        z = ZScoreNormalizer().fit_transform(x)
        assert np.isfinite(z).all()
        np.testing.assert_allclose(z[:, 0], np.zeros(10))

    def test_inverse_transform_roundtrip(self):
        x = RNG.normal(size=(50, 3))
        normalizer = ZScoreNormalizer().fit(x)
        np.testing.assert_allclose(
            normalizer.inverse_transform(normalizer.transform(x)), x,
            atol=1e-12)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ZScoreNormalizer().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            ZScoreNormalizer().inverse_transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            ZScoreNormalizer().to_dict()

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ZScoreNormalizer().fit(np.ones(5))
        with pytest.raises(ValueError):
            ZScoreNormalizer().fit(np.ones((0, 3)))

    def test_dict_roundtrip(self):
        x = RNG.normal(size=(20, 3))
        a = ZScoreNormalizer().fit(x)
        b = ZScoreNormalizer.from_dict(a.to_dict())
        np.testing.assert_allclose(a.transform(x), b.transform(x))


class TestSubsample:
    def test_short_segment_untouched(self):
        np.testing.assert_array_equal(subsample_indices(3, 7, 16),
                                      np.arange(3, 8))

    def test_long_segment_capped(self):
        idx = subsample_indices(0, 99, 16)
        assert len(idx) <= 16
        assert idx[0] == 0 and idx[-1] == 99
        assert (np.diff(idx) > 0).all()

    def test_single_point(self):
        np.testing.assert_array_equal(subsample_indices(5, 5, 16), [5])

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            subsample_indices(5, 3, 16)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 50), st.integers(0, 200), st.integers(2, 32))
    def test_invariants(self, start, length, max_len):
        end = start + length
        idx = subsample_indices(start, end, max_len)
        assert idx[0] == start and idx[-1] == end or length == 0
        assert len(idx) <= max(max_len, 1)
        assert (np.diff(idx) > 0).all() or len(idx) == 1


class TestFeatureExtractor:
    @pytest.fixture()
    def db(self):
        db = POIDatabase()
        db.add(POI(0, "chemical_factory", 32.0, 120.9))
        db.add(POI(1, "restaurant", 32.001, 120.9))
        return db

    def test_feature_dim_is_32(self):
        assert FEATURE_DIM == 32

    def test_trajectory_features_shape_and_content(self, db):
        from repro.model import Trajectory
        tr = Trajectory([32.0, 32.5], [120.9, 121.0], [0.0, 60.0])
        features = FeatureExtractor(db).trajectory_features(tr)
        assert features.shape == (2, 32)
        np.testing.assert_allclose(features[0, :3], [32.0, 120.9, 0.0])
        idx_chem = 3 + POI_CATEGORIES.index("chemical_factory")
        assert features[0, idx_chem] == 1.0
        assert features[1, 3:].sum() == 0.0  # far from all POIs

    def test_memoization(self, db):
        from repro.model import Trajectory
        tr = Trajectory([32.0], [120.9], [0.0])
        extractor = FeatureExtractor(db)
        a = extractor.trajectory_features(tr)
        b = extractor.trajectory_features(tr)
        assert a is b
        extractor.clear_cache()
        assert extractor.trajectory_features(tr) is not a

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FeatureConfig(poi_radius_m=0)
        with pytest.raises(ValueError):
            FeatureConfig(max_segment_len=1)


class TestCandidateFeaturizer:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.data import SyntheticWorld, WorldConfig
        world = SyntheticWorld(WorldConfig(seed=2))
        dataset = generate_dataset(
            DatasetConfig(num_trajectories=6, num_trucks=3, seed=2),
            world=world)
        processor = RawTrajectoryProcessor()
        processed = [processor.process(s.trajectory, s.label)
                     for s in dataset]
        processed = [p for p in processed if p is not None]
        extractor = FeatureExtractor(world.pois)
        featurizer = CandidateFeaturizer(extractor, ZScoreNormalizer())
        featurizer.fit_normalizer([p.cleaned for p in processed])
        return processed, featurizer

    def test_segments_alternate_and_shapes(self, setup):
        processed, featurizer = setup
        candidate = processed[0].candidates[0]
        features = featurizer.featurize(candidate)
        assert features.kinds[0] is SegmentKind.STAY
        assert features.kinds[-1] is SegmentKind.STAY
        assert all(s.shape[1] == FEATURE_DIM for s in features.segments)
        assert len(features.stay_segments) == len(features.move_segments) + 1

    def test_segment_length_cap(self, setup):
        processed, featurizer = setup
        max_len = featurizer.extractor.config.max_segment_len
        for p in processed[:3]:
            for candidate in p.candidates:
                features = featurizer.featurize(candidate)
                assert all(len(s) <= max_len for s in features.segments)

    def test_pair_passthrough(self, setup):
        processed, featurizer = setup
        candidate = processed[0].candidates[2]
        assert featurizer.featurize(candidate).pair == candidate.pair

    def test_normalized_scale(self, setup):
        """Features of real candidates should be roughly standardized."""
        processed, featurizer = setup
        flat = np.concatenate([
            featurizer.featurize(c).flat()
            for c in processed[0].candidates[:5]], axis=0)
        # Values stay within a reasonable standardized band.
        assert np.abs(flat).max() < 40.0
        assert np.abs(np.median(flat)) < 2.0

    def test_flat_matches_segments(self, setup):
        processed, featurizer = setup
        features = featurizer.featurize(processed[0].candidates[0])
        assert features.flat().shape[0] == features.num_points

    def test_stay_point_features(self, setup):
        processed, featurizer = setup
        sp = processed[0].stay_points[0]
        features = featurizer.stay_point_features(sp)
        assert features.ndim == 2
        assert features.shape[1] == FEATURE_DIM

    def test_featurize_all_counts(self, setup):
        processed, featurizer = setup
        features = featurizer.featurize_all(processed[0].candidates)
        assert len(features) == processed[0].num_candidates
