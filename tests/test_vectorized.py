"""Property tests: the vectorized preprocessing lanes equal the scalar ones.

Every front-end stage of this release has two implementations — a
per-fix scalar reference and an array-at-a-time production lane — and
the contract is exact agreement: bit-identical stay-point spans and
scanner pointers, identical noise-filter kept sets, POI counts equal to
the scalar queries.  Hypothesis drives adversarially shaped trajectories
(duplicate-adjacent fixes, teleporting outliers, all-stay, all-move,
single-point, empty) through both lanes, including random batch splits
and mid-stream checkpoint round-trips.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.poi import POI, POI_CATEGORIES, POIDatabase
from repro.model import Trajectory
from repro.processing import NoiseFilter, StayPointExtractor
from repro.processing.staypoints import StayPointScanner

BASE_LAT, BASE_LNG = 31.95, 120.85


# ---------------------------------------------------------------------------
# Trajectory strategies: interleaved stay / move / teleport segments.

@st.composite
def trajectories(draw, min_points=0, max_points=160):
    n = draw(st.integers(min_points, max_points))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    # Segment behaviour per point: mostly-stay, mostly-move, or mixed.
    regime = draw(st.sampled_from(["stay", "move", "mixed"]))
    lat, lng, t = BASE_LAT, BASE_LNG, 0.0
    lats, lngs, ts = [], [], []
    mode = "stay" if regime != "move" else "move"
    for _ in range(n):
        if regime == "mixed" and rng.random() < 0.05:
            mode = "move" if mode == "stay" else "stay"
        if rng.random() < 0.04 and lats:
            # duplicate-adjacent fix: same position, later timestamp
            lats.append(lats[-1])
            lngs.append(lngs[-1])
        else:
            if mode == "stay":
                lat += rng.uniform(-3e-4, 3e-4)
                lng += rng.uniform(-3e-4, 3e-4)
            else:
                lat += rng.uniform(-0.02, 0.02)
                lng += rng.uniform(0.004, 0.02)
            step_lat, step_lng = lat, lng
            if rng.random() < 0.05:
                # teleporting outlier: a one-fix excursion
                step_lat += rng.uniform(-0.8, 0.8)
            lats.append(step_lat)
            lngs.append(step_lng)
        t += rng.uniform(1.0, 180.0)
        ts.append(t)
    return Trajectory(lats, lngs, ts)


# ---------------------------------------------------------------------------
class TestScannerEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(trajectories(), st.randoms(use_true_random=False))
    def test_feed_batch_equals_feed(self, trajectory, rnd):
        """Random batch splits emit the scalar spans and pointers."""
        n = len(trajectory)
        ref = StayPointScanner()
        ref_spans = []
        for lat, lng, t in zip(trajectory.lats, trajectory.lngs,
                               trajectory.ts):
            ref_spans.extend(ref.feed(float(lat), float(lng), float(t)))
        ref_spans.extend(ref.finish())

        bat = StayPointScanner()
        bat_spans = []
        i = 0
        while i < n:
            step = rnd.randint(1, max(1, n // 3))
            bat_spans.extend(bat.feed_batch(trajectory.lats[i:i + step],
                                            trajectory.lngs[i:i + step],
                                            trajectory.ts[i:i + step]))
            i += step
            if rnd.random() < 0.25:
                # checkpoint round-trip mid-stream must not perturb
                resumed = StayPointScanner.from_state(
                    json.loads(json.dumps(bat.state())))
                assert resumed.state() == bat.state()
                bat = resumed
                bat._batch_lane = True
        bat_spans.extend(bat.finish())

        assert bat_spans == ref_spans
        assert (bat._anchor, bat._last, bat._scan, bat._emitted) \
            == (ref._anchor, ref._last, ref._scan, ref._emitted)

    @settings(max_examples=25, deadline=None)
    @given(trajectories(min_points=1))
    def test_extract_equals_scalar_replay(self, trajectory):
        extractor = StayPointExtractor()
        scanner = extractor.scanner()
        spans = []
        for lat, lng, t in zip(trajectory.lats, trajectory.lngs,
                               trajectory.ts):
            spans.extend(scanner.feed(float(lat), float(lng), float(t)))
        spans.extend(scanner.finish())
        assert [(sp.start, sp.end)
                for sp in extractor.extract(trajectory)] == spans

    def test_single_point_and_empty(self):
        scanner = StayPointScanner()
        assert scanner.feed_batch([], [], []) == []
        assert scanner.feed_batch([BASE_LAT], [BASE_LNG], [0.0]) == []
        assert scanner.finish() == []
        assert StayPointExtractor().extract(
            Trajectory([BASE_LAT], [BASE_LNG], [0.0])) == []

    def test_all_stay_single_span(self):
        ts = np.arange(0.0, 3600.0, 30.0)
        lats = BASE_LAT + 1e-5 * np.sin(ts)
        lngs = BASE_LNG + 1e-5 * np.cos(ts)
        spans = StayPointExtractor().extract(Trajectory(lats, lngs, ts))
        assert [(sp.start, sp.end) for sp in spans] \
            == [(0, len(ts) - 1)]

    def test_all_move_no_spans(self):
        n = 200
        ts = np.arange(n) * 30.0
        lats = BASE_LAT + np.arange(n) * 0.01  # ~1.1 km per fix
        lngs = np.full(n, BASE_LNG)
        assert StayPointExtractor().extract(
            Trajectory(lats, lngs, ts)) == []


class TestNoiseFilterEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(trajectories())
    def test_filter_equals_scalar(self, trajectory):
        nf = NoiseFilter()
        fast = nf.filter(trajectory)
        slow = nf.filter_scalar(trajectory)
        assert np.array_equal(fast.ts, slow.ts)
        assert np.array_equal(fast.lats, slow.lats)
        assert np.array_equal(fast.lngs, slow.lngs)

    @settings(max_examples=40, deadline=None)
    @given(trajectories(), st.booleans())
    def test_kept_indices_equals_scalar_walk(self, trajectory, with_prev):
        from repro.geo import haversine_m, speed_kmh
        nf = NoiseFilter()
        prev = (BASE_LAT, BASE_LNG, -60.0) if with_prev else None
        kept = nf.kept_indices(trajectory.lats, trajectory.lngs,
                               trajectory.ts, prev=prev)
        reference, last = [], prev
        for i in range(len(trajectory)):
            lat = float(trajectory.lats[i])
            lng = float(trajectory.lngs[i])
            t = float(trajectory.ts[i])
            if last is None or speed_kmh(
                    haversine_m(last[0], last[1], lat, lng),
                    t - last[2]) <= nf.max_speed_kmh:
                reference.append(i)
                last = (lat, lng, t)
        assert kept.tolist() == reference


class TestPOICountEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(trajectories(max_points=40), st.integers(0, 2**32 - 1),
           st.sampled_from([60.0, 100.0, 350.0]))
    def test_batch_counts_equal_scalar(self, trajectory, seed, radius):
        rng = np.random.default_rng(seed)
        db = POIDatabase()
        for k in range(rng.integers(0, 120)):
            db.add(POI(poi_id=k,
                       category=POI_CATEGORIES[
                           int(rng.integers(len(POI_CATEGORIES)))],
                       lat=float(BASE_LAT + rng.uniform(-0.05, 0.05)),
                       lng=float(BASE_LNG + rng.uniform(-0.05, 0.05))))
        batch = db.count_categories_batch(trajectory.lats, trajectory.lngs,
                                          radius_m=radius)
        assert batch.shape == (len(trajectory), len(POI_CATEGORIES))
        scalar = [db.count_categories(float(lat), float(lng),
                                      radius_m=radius)
                  for lat, lng in zip(trajectory.lats, trajectory.lngs)]
        if scalar:
            assert np.allclose(batch, np.stack(scalar), rtol=1e-9, atol=0.0)

    def test_empty_query_and_empty_db(self):
        db = POIDatabase()
        assert db.count_categories_batch([], [], radius_m=100.0).shape \
            == (0, len(POI_CATEGORIES))
        assert db.count_categories_batch(
            [BASE_LAT], [BASE_LNG], radius_m=100.0).shape \
            == (1, len(POI_CATEGORIES))
