"""Tests for joint fine-tuning machinery: merged groups, indexed scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import (DetectorTrainingConfig, GroupDetector,
                             IndependentDetector, JointDetectorTrainer,
                             TrajectorySpec, backward_index_maps,
                             build_backward_group, build_forward_group,
                             enumerate_pairs, forward_index_maps,
                             merge_groups)
from repro.encoding import EncoderConfig, HierarchicalAutoencoder
from repro.nn import Parameter, SGD, Tensor
from repro.nn.optim import Adam

RNG = np.random.default_rng(71)


def candidate_count(n):
    return n * (n - 1) // 2


class TestIndexMaps:
    def test_forward_maps_match_group_builder(self):
        n = 6
        cvecs = RNG.normal(size=(candidate_count(n), 4))
        group = build_forward_group(cvecs, n)
        maps = forward_index_maps(n)
        for a, b in zip(group.index_maps, maps):
            np.testing.assert_array_equal(a, b)

    def test_backward_maps_match_group_builder(self):
        n = 6
        cvecs = RNG.normal(size=(candidate_count(n), 4))
        group = build_backward_group(cvecs, n)
        maps = backward_index_maps(n)
        for a, b in zip(group.index_maps, maps):
            np.testing.assert_array_equal(a, b)


class TestMergeGroups:
    def test_merge_offsets_indices(self):
        a = build_forward_group(RNG.normal(size=(3, 4)), 3)   # 3 candidates
        b = build_forward_group(RNG.normal(size=(6, 4)), 4)   # 6 candidates
        merged = merge_groups([a, b])
        assert merged.num_candidates == 9
        indices = np.sort(merged.flat_indices())
        np.testing.assert_array_equal(indices, np.arange(9))

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_groups([])

    def test_merged_detector_equals_separate_subgroup_mode(self):
        """One forward over a merged group == per-trajectory forwards."""
        detector = GroupDetector(input_dim=4, hidden_size=6, num_layers=2,
                                 rng=np.random.default_rng(0),
                                 subgroup_softmax=True)
        ga = build_forward_group(RNG.normal(size=(3, 4)), 3)
        gb = build_forward_group(RNG.normal(size=(10, 4)), 5)
        merged_probs = detector(merge_groups([ga, gb])).numpy()
        pa = detector(ga).numpy()
        pb = detector(gb).numpy()
        np.testing.assert_allclose(merged_probs, np.concatenate([pa, pb]),
                                   atol=1e-12)

    def test_merged_flat_softmax_with_segments_equals_separate(self):
        """Flat softmax with segment boundaries == per-trajectory runs."""
        detector = GroupDetector(input_dim=4, hidden_size=6, num_layers=1,
                                 rng=np.random.default_rng(0))
        cvecs_a = RNG.normal(size=(3, 4))
        cvecs_b = RNG.normal(size=(10, 4))
        ga = build_forward_group(cvecs_a, 3)
        gb = build_forward_group(cvecs_b, 5)
        merged = merge_groups([ga, gb])
        all_cvecs = np.concatenate([cvecs_a, cvecs_b], axis=0)
        merged_probs = detector.score_indexed(
            Tensor(all_cvecs), list(merged.index_maps),
            segments=np.array([3, 10])).numpy()
        pa = detector(ga).numpy()
        pb = detector(gb).numpy()
        np.testing.assert_allclose(merged_probs, np.concatenate([pa, pb]),
                                   atol=1e-12)
        # And each trajectory's slice is itself a distribution.
        assert merged_probs[:3].sum() == pytest.approx(1.0)
        assert merged_probs[3:].sum() == pytest.approx(1.0)


class TestScoreIndexed:
    def test_matches_forward_on_group(self):
        n = 5
        cvecs = RNG.normal(size=(candidate_count(n), 8))
        detector = GroupDetector(input_dim=8, hidden_size=6, num_layers=2,
                                 rng=np.random.default_rng(1))
        group = build_forward_group(cvecs, n)
        via_group = detector(group).numpy()
        via_index = detector.score_indexed(
            Tensor(cvecs), forward_index_maps(n)).numpy()
        np.testing.assert_allclose(via_group, via_index, atol=1e-12)

    def test_gradients_flow_to_cvecs(self):
        n = 4
        cvecs = Tensor(RNG.normal(size=(candidate_count(n), 8)),
                       requires_grad=True)
        detector = GroupDetector(input_dim=8, hidden_size=6, num_layers=1,
                                 rng=np.random.default_rng(2))
        probs = detector.score_indexed(cvecs, forward_index_maps(n))
        (probs * probs).sum().backward()
        assert cvecs.grad is not None
        assert np.isfinite(cvecs.grad).all()


class TestAdamWeightDecay:
    def test_decay_shrinks_unused_weights(self):
        p = Parameter(np.full(3, 10.0))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(p.data, np.full(3, 9.5))

    def test_no_decay_by_default(self):
        p = Parameter(np.full(3, 10.0))
        opt = Adam([p], lr=0.1)
        p.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(p.data, np.full(3, 10.0))


def make_specs(featurizer_rng, n_specs=6, n=4, seg_len=5, dim=32):
    """Synthetic TrajectorySpecs whose target candidate has a marker."""
    specs = []
    for _ in range(n_specs):
        stay = [featurizer_rng.normal(0, 0.2, size=(seg_len, dim))
                for _ in range(n)]
        move = [featurizer_rng.normal(0, 0.2, size=(seg_len, dim))
                for _ in range(n - 1)]
        pairs = enumerate_pairs(n)
        target = int(featurizer_rng.integers(len(pairs)))
        i, j = pairs[target]
        stay[i - 1][:, :3] += 1.5   # mark the loading stay
        stay[j - 1][:, 3:6] += 1.5  # mark the unloading stay
        specs.append(TrajectorySpec(stay, move, pairs, n, target))
    return specs


class TestJointTrainer:
    def test_requires_a_detector(self):
        ae = HierarchicalAutoencoder(EncoderConfig())
        with pytest.raises(ValueError):
            JointDetectorTrainer(ae, None, None, None)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrajectorySpec([np.zeros((2, 4))], [], [(1, 2)], 2, 0)
        with pytest.raises(ValueError):
            TrajectorySpec([np.zeros((2, 4))] * 2, [np.zeros((2, 4))],
                           [(1, 2)], 2, 5)

    def test_fit_reduces_loss_and_tunes_encoder(self):
        rng = np.random.default_rng(3)
        ae = HierarchicalAutoencoder(EncoderConfig(seed=3))
        fwd = GroupDetector(64, 16, 1, np.random.default_rng(4))
        bwd = GroupDetector(64, 16, 1, np.random.default_rng(5))
        trainer = JointDetectorTrainer(
            ae, fwd, bwd, config=DetectorTrainingConfig(
                epochs=4, learning_rate=3e-3, batch_size=3, patience=10,
                seed=0),
            finetune_encoder=True)
        before = ae.state_dict()
        specs = make_specs(rng)
        histories = trainer.fit(specs)
        assert len(histories) == 2
        assert histories[0].final_loss < histories[0].epoch_losses[0]
        after = ae.state_dict()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed, "encoder weights should move when fine-tuning"

    def test_frozen_encoder_untouched(self):
        rng = np.random.default_rng(6)
        ae = HierarchicalAutoencoder(EncoderConfig(seed=6))
        fwd = GroupDetector(64, 8, 1, np.random.default_rng(7))
        trainer = JointDetectorTrainer(
            ae, fwd, None, config=DetectorTrainingConfig(
                epochs=1, batch_size=3, seed=0),
            finetune_encoder=False)
        before = ae.state_dict()
        trainer.fit(make_specs(rng, n_specs=3))
        after = ae.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)

    def test_independent_path(self):
        rng = np.random.default_rng(8)
        ae = HierarchicalAutoencoder(EncoderConfig(seed=8))
        mlp = IndependentDetector(64, np.random.default_rng(9))
        trainer = JointDetectorTrainer(
            ae, None, None, mlp, DetectorTrainingConfig(
                epochs=2, batch_size=3, seed=0))
        histories = trainer.fit(make_specs(rng, n_specs=4))
        assert histories[0].name == "independent-detector"

    def test_fit_rejects_empty(self):
        ae = HierarchicalAutoencoder(EncoderConfig())
        fwd = GroupDetector(64, 8, 1)
        with pytest.raises(ValueError):
            JointDetectorTrainer(ae, fwd, None).fit([])
