"""Tests for the command-line interface (cheap paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data import HCTDataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.json.gz", "--trajectories", "5"])
        assert args.trajectories == 5

    def test_tables_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--scale", "galactic"])


class TestGenerate:
    def test_generate_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "data.json.gz"
        code = main(["generate", "--out", str(out), "--trajectories", "4",
                     "--seed", "3"])
        assert code == 0
        dataset = HCTDataset.load(out)
        assert len(dataset) == 4
        assert "wrote 4" in capsys.readouterr().out
