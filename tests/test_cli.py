"""Tests for the command-line interface (cheap paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data import HCTDataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.json.gz", "--trajectories", "5"])
        assert args.trajectories == 5

    def test_tables_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--scale", "galactic"])

    def test_stream_args(self):
        args = build_parser().parse_args(
            ["stream", "--data", "x.json.gz", "--model", "m/",
             "--tick-s", "600", "--max-sessions", "32", "--scramble", "4"])
        assert args.tick_s == 600.0
        assert args.max_sessions == 32
        assert args.scramble == 4
        assert args.checkpoint_dir is None


class TestGenerate:
    def test_generate_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "data.json.gz"
        code = main(["generate", "--out", str(out), "--trajectories", "4",
                     "--seed", "3"])
        assert code == 0
        dataset = HCTDataset.load(out)
        assert len(dataset) == 4
        assert "wrote 4" in capsys.readouterr().out


class TestVerify:
    @staticmethod
    def _model_dir(tmp_path):
        from repro.io import atomic_write_json, write_manifest
        directory = tmp_path / "model"
        directory.mkdir()
        atomic_write_json(directory / "state.json", {"normalizer": {}})
        write_manifest(directory, ["state.json"], kind="lead-model")
        return directory

    def test_verify_ok(self, tmp_path, capsys):
        directory = self._model_dir(tmp_path)
        assert main(["verify", "--model", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "ok  state.json" in out and "1 artifacts verified" in out

    def test_verify_reports_corruption(self, tmp_path, capsys):
        directory = self._model_dir(tmp_path)
        data = bytearray((directory / "state.json").read_bytes())
        data[len(data) // 2] ^= 0xFF
        (directory / "state.json").write_bytes(bytes(data))
        assert main(["verify", "--model", str(directory)]) == 2
        assert "CORRUPT" in capsys.readouterr().out

    def test_verify_requires_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert main(["verify", "--model", str(tmp_path / "empty")]) == 2


class TestTypedErrorRendering:
    def test_typed_errors_become_one_line_messages(self, tmp_path, capsys):
        """A missing data file exits 2 with a message, not a traceback."""
        code = main(["train", "--data", str(tmp_path / "missing.json.gz"),
                     "--out", str(tmp_path / "model")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error (")
        assert "Traceback" not in err

    def test_traceback_flag_reraises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["--traceback", "train",
                  "--data", str(tmp_path / "missing.json.gz"),
                  "--out", str(tmp_path / "model")])
