"""Unit and property tests for the autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, concat, is_grad_enabled, no_grad, stack

from .helpers import check_gradient

RNG = np.random.default_rng(7)


def small_arrays(min_dims: int = 1, max_dims: int = 2):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims,
                               min_side=1, max_side=4),
        elements=st.floats(-3.0, 3.0, allow_nan=False, width=64),
    )


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_item_and_len(self):
        assert Tensor(5.0).item() == 5.0
        assert len(Tensor([1.0, 2.0])) == 2

    def test_detach_breaks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2.0).detach()
        assert not d.requires_grad

    def test_backward_on_non_scalar_requires_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            t = Tensor([1.0], requires_grad=True)
            out = t * 2.0
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_grad_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        out = (t * 3.0 + t * 4.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [7.0])


class TestForwardValues:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        np.testing.assert_allclose(
            (a + b).numpy(), np.tile(1.0 + np.arange(3.0), (2, 1)))

    def test_matmul_matrix_vector(self):
        m = Tensor(np.eye(3) * 2.0)
        v = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose((m @ v).numpy(), [2.0, 4.0, 6.0])

    def test_softmax_sums_to_one(self):
        x = Tensor(RNG.normal(size=(4, 5)))
        s = x.softmax(axis=1).numpy()
        np.testing.assert_allclose(s.sum(axis=1), np.ones(4))
        assert (s > 0).all()

    def test_softmax_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1001.0]]))
        s = x.softmax(axis=1).numpy()
        assert np.isfinite(s).all()

    def test_mean_matches_numpy(self):
        x = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x).mean(axis=0).numpy(),
                                   x.mean(axis=0))

    def test_getitem_slice(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_allclose(x[:, 1:3].numpy(), x.numpy()[:, 1:3])

    def test_reshape_and_swapaxes(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape(2, 3).swapaxes(0, 1).shape == (3, 2)


class TestGradients:
    @pytest.mark.parametrize("op", [
        lambda t: t + 2.0,
        lambda t: 2.0 - t,
        lambda t: t * 3.0,
        lambda t: t / 2.0,
        lambda t: -t,
        lambda t: t**3,
        lambda t: t.tanh(),
        lambda t: t.sigmoid(),
        lambda t: t.relu() * t,  # relu composed to exercise chain
        lambda t: t.exp(),
        lambda t: t.softmax(axis=-1),
        lambda t: t.mean(),
        lambda t: t.sum(axis=0),
        lambda t: t.reshape(-1),
        lambda t: t[1:, :],
    ])
    def test_elementwise_ops(self, op):
        check_gradient(op, RNG.normal(size=(3, 4)))

    def test_log_gradient_positive_domain(self):
        check_gradient(lambda t: t.log(), RNG.uniform(0.5, 2.0, size=(3, 3)))

    def test_sqrt_gradient(self):
        check_gradient(lambda t: t.sqrt(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_matmul_gradient_left(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda t: t @ Tensor(w), RNG.normal(size=(3, 4)))

    def test_matmul_gradient_right(self):
        x = RNG.normal(size=(3, 4))
        check_gradient(lambda t: Tensor(x) @ t, RNG.normal(size=(4, 2)))

    def test_matmul_gradient_batched(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda t: t @ Tensor(w), RNG.normal(size=(2, 3, 4)))

    def test_mul_broadcast_gradient(self):
        other = RNG.normal(size=(1, 4))
        check_gradient(lambda t: t * Tensor(other), RNG.normal(size=(3, 4)))

    def test_div_gradient_both_sides(self):
        denominator = RNG.uniform(0.5, 2.0, size=(3, 4))
        check_gradient(lambda t: t / Tensor(denominator),
                       RNG.normal(size=(3, 4)))
        numerator = RNG.normal(size=(3, 4))
        check_gradient(lambda t: Tensor(numerator) / t,
                       RNG.uniform(0.5, 2.0, size=(3, 4)))

    def test_concat_gradient(self):
        other = RNG.normal(size=(3, 2))
        check_gradient(lambda t: concat([t, Tensor(other)], axis=1),
                       RNG.normal(size=(3, 4)))

    def test_stack_gradient(self):
        other = RNG.normal(size=(3,))
        check_gradient(lambda t: stack([t, Tensor(other)], axis=0),
                       RNG.normal(size=(3,)))

    def test_sum_keepdims_gradient(self):
        check_gradient(lambda t: t.sum(axis=1, keepdims=True),
                       RNG.normal(size=(3, 4)))

    @settings(max_examples=25, deadline=None)
    @given(small_arrays())
    def test_tanh_gradient_property(self, x):
        check_gradient(lambda t: t.tanh(), x, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2))
    def test_softmax_gradient_property(self, x):
        check_gradient(lambda t: t.softmax(axis=-1), x, atol=1e-4)

    def test_diamond_graph_gradient(self):
        # f(x) = sum(tanh(x) * sigmoid(x)) exercises shared subgraphs.
        check_gradient(lambda t: t.tanh() * t.sigmoid(),
                       RNG.normal(size=(5,)))

    def test_deep_chain_gradient(self):
        def chain(t):
            for _ in range(10):
                t = (t * 1.1).tanh()
            return t
        check_gradient(chain, RNG.normal(size=(4,)))


class TestUnbroadcast:
    def test_broadcast_add_grad_shape(self):
        a = Tensor(np.zeros((2, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_scalar_broadcast_grad(self):
        a = Tensor(np.zeros((2, 2)), requires_grad=True)
        s = Tensor(1.0, requires_grad=True)
        (a * s).sum().backward()
        assert s.grad.shape == ()
