"""Tests for metrics, the evaluation harness, and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (BUCKETS, DetectionRecord, accuracy,
                        accuracy_by_bucket, bucket_of, evaluate_detector,
                        format_accuracy_table, format_loss_curves,
                        format_timing_table, mean_inference_time_by_bucket,
                        prepare_test_set)


def record(n, hit, t=0.01):
    true = (1, 2)
    detected = (1, 2) if hit else (1, 3) if n >= 3 else (1, 2)
    return DetectionRecord(n, true, detected, t)


class TestMetrics:
    def test_hit_requires_exact_pair(self):
        assert record(5, True).hit
        assert not record(5, False).hit

    def test_accuracy(self):
        records = [record(4, True), record(4, True), record(4, False),
                   record(4, False)]
        assert accuracy(records) == 50.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([])

    def test_bucket_of(self):
        assert bucket_of(3) == "3~5"
        assert bucket_of(8) == "6~8"
        assert bucket_of(11) == "9~11"
        assert bucket_of(14) == "12~14"
        assert bucket_of(2) is None
        assert bucket_of(15) is None

    def test_buckets_cover_paper_range(self):
        covered = {n for lo, hi in BUCKETS for n in range(lo, hi + 1)}
        assert covered == set(range(3, 15))

    def test_accuracy_by_bucket(self):
        records = [record(4, True), record(4, False),  # 3~5 -> 50%
                   record(7, True),                     # 6~8 -> 100%
                   record(15, False)]                   # outside buckets
        table = accuracy_by_bucket(records)
        assert table["3~5"] == (50.0, 2)
        assert table["6~8"] == (100.0, 1)
        assert np.isnan(table["9~11"][0])
        # The 15-stay record is excluded from the overall row.
        assert table["3~14"] == (pytest.approx(200 / 3), 3)

    def test_timing_by_bucket(self):
        records = [record(4, True, t=0.1), record(4, True, t=0.3),
                   record(7, True, t=1.0)]
        timing = mean_inference_time_by_bucket(records)
        assert timing["3~5"] == pytest.approx(0.2)
        assert timing["6~8"] == pytest.approx(1.0)
        assert np.isnan(timing["12~14"])


class TestHarness:
    def test_evaluate_detector_records_and_times(self):
        from repro.processing import ProcessedTrajectory
        # A minimal fake "processed" stand-in via real processing.
        from repro.data import DatasetConfig, generate_dataset
        from repro.processing import RawTrajectoryProcessor
        dataset = generate_dataset(DatasetConfig(
            num_trajectories=3, num_trucks=2, seed=9))
        test_set = prepare_test_set(dataset)
        assert test_set, "expected processable samples"
        records = evaluate_detector(
            lambda p: (1, p.num_stay_points), test_set)
        assert len(records) == len(test_set)
        assert all(r.inference_time_s >= 0 for r in records)
        # Default-pair detection hits whenever the truth is (1, n).
        for r, (p, truth) in zip(records, test_set):
            assert r.hit == (truth == (1, p.num_stay_points))

    def test_evaluate_empty_raises(self):
        with pytest.raises(ValueError):
            evaluate_detector(lambda p: (1, 2), [])


class TestReports:
    def make_results(self):
        return {
            "SP-R": [record(4, False), record(7, True)],
            "LEAD": [record(4, True), record(7, True)],
        }

    def test_accuracy_table_renders_all_methods(self):
        text = format_accuracy_table(self.make_results(), "Table X")
        assert "Table X" in text
        assert "SP-R" in text and "LEAD" in text
        assert "3~5" in text and "3~14" in text
        assert "(share)" in text

    def test_timing_table_renders(self):
        text = format_timing_table(self.make_results(), "Fig X")
        assert "Fig X" in text
        assert "ms" in text

    def test_loss_curves_render(self):
        text = format_loss_curves(
            {"HA in LEAD": [0.12, 0.05, 0.04]}, "Fig 9", loss_name="mse")
        assert "minimized at epoch 2" in text
        assert "mse=0.0400" in text
