"""Tests for the online detection subsystem (``repro.stream``).

The load-bearing contract: a trajectory streamed ping-by-ping through a
:class:`TruckSession` / :class:`FleetSessionManager` ends — after the
flush — at *exactly* the offline ``LEAD.detect`` answer: same candidate
pair, ``allclose`` distribution at ``rtol=1e-9``, identical provenance
(tier and notes), across ≥50 simulated truck-days and under hostile
arrival conditions (bounded out-of-order delivery, non-finite and
out-of-range fixes, knocked-out detectors).  On top of that sit the
serving-layer mechanics: tick memoization, suffix-only refeaturization
via the slice-keyed cache, LRU eviction with bit-exact checkpoint
restore, and a thousand-session soak.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.model import Trajectory
from repro.pipeline import LEAD, LEADConfig
from repro.processing import ReorderBuffer, monotonize_stream
from repro.stream import (FleetConfig, FleetSessionManager, TruckSession,
                          confidence_tier, dataset_ping_stream,
                          scramble_stream)


def tiny_lead_config(**overrides) -> LEADConfig:
    base = dict(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    base.update(overrides)
    return LEADConfig(**base)


@pytest.fixture(scope="module")
def world_and_data():
    world = SyntheticWorld(WorldConfig(seed=13))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=50, num_trucks=20, seed=13),
        world=world)
    return world, dataset


@pytest.fixture(scope="module")
def fitted(world_and_data):
    world, dataset = world_and_data
    lead = LEAD(world.pois, tiny_lead_config())
    lead.fit(dataset.samples[:8])
    return lead


@pytest.fixture(scope="module")
def offline(world_and_data, fitted):
    """Reference offline answers, one per truck-day."""
    _, dataset = world_and_data
    results = {}
    for sample in dataset.samples:
        trajectory = sample.trajectory
        key = (str(trajectory.truck_id), str(trajectory.day))
        assert key not in results, "truck-day keys must be unique"
        results[key] = fitted.detect(trajectory)
    return results


def assert_verdict_matches(verdict, result):
    """Streamed final verdict == offline DetectionResult, bit for bit."""
    if result is None:
        assert verdict.pair is None
        assert verdict.confidence == "none"
        return
    assert verdict.final
    assert verdict.pair == result.pair
    assert np.allclose(verdict.distribution, result.distribution,
                       rtol=1e-9, atol=0.0)
    assert verdict.provenance.tier == result.provenance.tier
    assert verdict.provenance.notes == result.provenance.notes
    assert verdict.provenance.sanitized == result.provenance.sanitized
    expected = float(result.distribution[
        result.processed.candidate_index(result.pair)])
    assert verdict.probability == pytest.approx(expected, rel=1e-9)


# ---------------------------------------------------------------------------
# 1. Convergence: streamed final == offline detect (≥50 truck-days)
# ---------------------------------------------------------------------------
class TestConvergence:
    def _run_fleet(self, fitted, pings, **config):
        manager = FleetSessionManager(fitted, FleetConfig(**config))
        for ping in pings:
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        return {(v.truck_id, v.day): v for v in manager.flush_all()}

    def test_in_order_replay_matches_offline(self, world_and_data, fitted,
                                             offline):
        _, dataset = world_and_data
        finals = self._run_fleet(
            fitted, dataset_ping_stream(dataset.samples))
        assert len(finals) == 50
        for key, result in offline.items():
            assert_verdict_matches(finals[key], result)
        # The fixture set must actually exercise detection.
        assert sum(r is not None for r in offline.values()) >= 25

    def test_out_of_order_replay_matches_offline(self, world_and_data,
                                                 fitted, offline):
        """Bounded scrambling is absorbed by the reorder buffer."""
        _, dataset = world_and_data
        pings = scramble_stream(dataset_ping_stream(dataset.samples),
                                window=6, seed=3)
        finals = self._run_fleet(fitted, pings, reorder_capacity=8)
        for key, result in offline.items():
            assert_verdict_matches(finals[key], result)

    def test_ticks_between_pings_do_not_change_the_final(
            self, world_and_data, fitted, offline):
        """Interleaved provisional ticks never perturb convergence."""
        _, dataset = world_and_data
        samples = dataset.samples[:6]
        manager = FleetSessionManager(fitted, FleetConfig())
        pings = dataset_ping_stream(samples)
        for i, ping in enumerate(pings):
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
            if i % 400 == 0:
                manager.tick()
        finals = {(v.truck_id, v.day): v for v in manager.flush_all()}
        for sample in samples:
            key = (str(sample.trajectory.truck_id),
                   str(sample.trajectory.day))
            assert_verdict_matches(finals[key], offline[key])

    def test_degraded_model_provenance_matches_offline(self, world_and_data,
                                                       fitted):
        """A knocked-out detector degrades the stream exactly like
        the serial path: forward-only tier, same failure notes."""
        world, dataset = world_and_data
        crippled = LEAD(world.pois, tiny_lead_config())
        crippled.featurizer.normalizer = fitted.featurizer.normalizer
        crippled.autoencoder = fitted.autoencoder
        crippled.forward_detector = fitted.forward_detector
        crippled.backward_detector = None
        crippled._fitted = True
        samples = dataset.samples[8:16]
        finals = self._run_fleet(crippled, dataset_ping_stream(samples))
        answered = 0
        for sample in samples:
            trajectory = sample.trajectory
            key = (str(trajectory.truck_id), str(trajectory.day))
            result = crippled.detect(trajectory)
            assert_verdict_matches(finals[key], result)
            if result is not None:
                answered += 1
                assert finals[key].provenance.tier == "forward-only"
                assert any("tier 'both' failed" in note
                           for note in finals[key].provenance.notes)
        assert answered > 0

    def test_hostile_fixes_counted_like_offline_sanitize(self,
                                                         world_and_data,
                                                         fitted):
        """Non-finite / out-of-range pings drop with the offline note."""
        _, dataset = world_and_data
        clean = dataset.samples[9].trajectory
        lats = np.array(clean.lats)
        lngs = np.array(clean.lngs)
        ts = np.array(clean.ts)
        # Corrupt three interior fixes in ways sanitize must drop.
        lats[5], lngs[17], lats[40] = np.nan, 400.0, 95.0
        hostile = Trajectory(lats, lngs, ts, truck_id=clean.truck_id,
                             day=clean.day)
        result = fitted.detect(hostile)
        assert result is not None
        assert result.provenance.sanitized
        session = TruckSession(str(clean.truck_id), str(clean.day),
                               processor=fitted.processor)
        for lat, lng, t in zip(lats, lngs, ts):
            session.ingest(lat, lng, t)
        session.finalize()
        assert session.counters.pings_dropped_invalid == 3
        assert session.sanitize_notes() == \
            ["dropped 3 non-finite/out-of-range fixes"]
        verdicts = fitted.detect_many([session.snapshot()],
                                      [session.sanitize_notes()])
        assert verdicts[0].pair == result.pair
        assert verdicts[0].provenance == result.provenance
        assert np.allclose(verdicts[0].distribution, result.distribution,
                           rtol=1e-9, atol=0.0)

    @settings(max_examples=8, deadline=None)
    @given(window=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_property_scrambled_stream_converges(self, world_and_data,
                                                 fitted, offline, window,
                                                 seed):
        """Any bounded-window scramble of the feed converges exactly."""
        _, dataset = world_and_data
        samples = dataset.samples[:4]
        pings = scramble_stream(dataset_ping_stream(samples),
                                window=window, seed=seed)
        finals = self._run_fleet(fitted, pings, reorder_capacity=8)
        for sample in samples:
            key = (str(sample.trajectory.truck_id),
                   str(sample.trajectory.day))
            assert_verdict_matches(finals[key], offline[key])


# ---------------------------------------------------------------------------
# 2. Tick mechanics: memoization and suffix-only refeaturization
# ---------------------------------------------------------------------------
class TestTicks:
    def test_unchanged_sessions_skip_redetection(self, world_and_data,
                                                 fitted):
        _, dataset = world_and_data
        manager = FleetSessionManager(fitted, FleetConfig())
        for ping in dataset_ping_stream(dataset.samples[:3]):
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        first = manager.tick()
        calls = manager.counters.detect_calls
        second = manager.tick()
        assert manager.counters.detect_calls == calls  # all memoized
        assert [v.pair for v in second] == [v.pair for v in first]

    def test_growing_session_hits_closed_segment_cache(self, world_and_data,
                                                       fitted):
        """Tick N+1 re-featurizes only the newly extended suffix: every
        segment closed by tick N is served from the slice-keyed cache."""
        _, dataset = world_and_data
        cache = fitted.feature_cache
        assert cache is not None
        sample = max(dataset.samples,
                     key=lambda s: len(s.trajectory))
        manager = FleetSessionManager(fitted, FleetConfig())
        trajectory = sample.trajectory
        n = len(trajectory)
        cache.clear()
        hits_before = cache.stats.hits
        misses = []
        for i, (lat, lng, t) in enumerate(zip(trajectory.lats,
                                              trajectory.lngs,
                                              trajectory.ts)):
            manager.ingest(str(trajectory.truck_id), lat, lng, t,
                           day=str(trajectory.day))
            if i and i % (n // 8) == 0:
                before = cache.stats.misses
                manager.tick()
                misses.append(cache.stats.misses - before)
        manager.flush_all()
        assert cache.stats.hits > hits_before
        # Per-tick misses must not grow with trajectory length: only the
        # suffix is new, so late ticks miss no more than early ones.
        busy = [m for m in misses if m]
        if len(busy) >= 2:
            assert busy[-1] <= max(busy[0], 4)

    def test_ingest_only_manager_reports_progress(self, world_and_data):
        _, dataset = world_and_data
        manager = FleetSessionManager(None)
        for ping in dataset_ping_stream(dataset.samples[:2]):
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        verdicts = manager.tick()
        assert len(verdicts) == 2
        assert all(v.pair is None and v.confidence == "none"
                   for v in verdicts)
        assert all(v.num_stay_points > 0 for v in verdicts)


# ---------------------------------------------------------------------------
# 3. Session checkpointing: bit-exact suspend/resume
# ---------------------------------------------------------------------------
class TestSessionCheckpoint:
    def test_json_roundtrip_mid_stream_is_bit_exact(self, world_and_data,
                                                    fitted):
        _, dataset = world_and_data
        trajectory = dataset.samples[10].trajectory
        processor = fitted.processor
        full = TruckSession("a", "d", processor=processor)
        resumed = TruckSession("a", "d", processor=processor)
        half = len(trajectory) // 2
        for i, (lat, lng, t) in enumerate(zip(trajectory.lats,
                                              trajectory.lngs,
                                              trajectory.ts)):
            full.ingest(lat, lng, t)
            if i < half:
                resumed.ingest(lat, lng, t)
        # Suspend at the halfway mark through JSON (as the fleet
        # manager's checkpoint files do), then catch up.
        state = json.loads(json.dumps(resumed.state()))
        resumed = TruckSession.from_state(state, processor=processor)
        for lat, lng, t in zip(trajectory.lats[half:],
                               trajectory.lngs[half:],
                               trajectory.ts[half:]):
            resumed.ingest(lat, lng, t)
        full.finalize()
        resumed.finalize()
        assert resumed.counters.as_dict() == full.counters.as_dict()
        a, b = full.snapshot(), resumed.snapshot()
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a.cleaned.lats, b.cleaned.lats)
            assert np.array_equal(a.cleaned.lngs, b.cleaned.lngs)
            assert np.array_equal(a.cleaned.ts, b.cleaned.ts)
            assert [(sp.start, sp.end) for sp in a.stay_points] == \
                   [(sp.start, sp.end) for sp in b.stay_points]

    def test_finalized_session_rejects_pings(self):
        session = TruckSession("t", "d")
        session.ingest(31.9, 120.8, 0.0)
        session.finalize()
        with pytest.raises(ValueError):
            session.ingest(31.9, 120.8, 60.0)
        assert session.finalize() == 0  # idempotent

    def test_session_never_raises_on_hostile_pings(self):
        session = TruckSession("t", "d")
        session.ingest(np.nan, 120.8, 0.0)
        session.ingest(31.9, np.inf, 1.0)
        session.ingest(999.0, 120.8, 2.0)
        session.ingest(31.9, 120.8, 10.0)
        session.ingest(31.9, 120.8, 5.0)   # within reorder window
        session.ingest(31.9, 120.8, 10.0)  # duplicate timestamp
        session.finalize()
        assert session.counters.pings_dropped_invalid == 3
        assert session.counters.pings_kept == 2


# ---------------------------------------------------------------------------
# 4. Fleet manager: LRU eviction, checkpoint spill, 1000-session soak
# ---------------------------------------------------------------------------
class TestFleetSoak:
    def test_thousand_sessions_bounded_memory(self, tmp_path):
        manager = FleetSessionManager(None, FleetConfig(
            max_sessions=64, checkpoint_dir=tmp_path / "ckpt"))
        trucks = [f"truck-{i:04d}" for i in range(1000)]
        # Two passes: the second pass restores evicted sessions from
        # their checkpoints (memory stays bounded throughout).
        for t0 in (0.0, 3000.0):
            for k, truck in enumerate(trucks):
                for j in range(3):
                    manager.ingest(truck, 31.9 + (k % 7) * 1e-4, 120.8,
                                   t0 + j * 60.0, day="2026-08-06")
                assert len(manager) <= 64
        assert manager.counters.sessions_opened == 1000
        assert manager.counters.sessions_evicted > 900
        assert manager.counters.sessions_restored >= 900
        assert manager.counters.sessions_dropped == 0
        finals = manager.flush_all()
        assert len(finals) == 1000
        assert {(v.truck_id, v.day) for v in finals} == \
               {(t, "2026-08-06") for t in trucks}
        totals = manager.session_totals()
        assert totals.pings_ingested == 1000 * 6
        assert len(manager) == 0
        assert manager.known_sessions == []
        # Flush removed every checkpoint file.
        assert list((tmp_path / "ckpt").glob("*.json")) == []

    def test_eviction_without_checkpoint_dir_drops_state(self):
        manager = FleetSessionManager(None, FleetConfig(max_sessions=2))
        for truck in ("a", "b", "c"):
            manager.ingest(truck, 31.9, 120.8, 0.0)
        assert len(manager) == 2
        assert manager.counters.sessions_dropped == 1
        # The dropped truck re-opens from scratch on its next ping.
        manager.ingest("a", 31.9, 120.8, 60.0)
        assert manager.counters.sessions_opened == 4

    def test_evict_restore_matches_uninterrupted_session(self, tmp_path,
                                                         world_and_data,
                                                         fitted, offline):
        """An eviction/restore cycle mid-day is invisible to the final
        verdict."""
        _, dataset = world_and_data
        samples = dataset.samples[:4]
        manager = FleetSessionManager(fitted, FleetConfig(
            max_sessions=2, checkpoint_dir=tmp_path / "spill"))
        for ping in dataset_ping_stream(samples):
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        assert manager.counters.sessions_evicted > 0
        assert manager.counters.sessions_restored > 0
        finals = {(v.truck_id, v.day): v for v in manager.flush_all()}
        for sample in samples:
            key = (str(sample.trajectory.truck_id),
                   str(sample.trajectory.day))
            assert_verdict_matches(finals[key], offline[key])

    def test_stats_shape(self, world_and_data, fitted):
        _, dataset = world_and_data
        manager = FleetSessionManager(fitted, FleetConfig())
        for ping in dataset_ping_stream(dataset.samples[:2]):
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        manager.tick()
        stats = manager.stats()
        assert json.dumps(stats)  # JSON-safe
        assert stats["resident_sessions"] == 2
        assert stats["fleet"]["ticks"] == 1
        assert "feature_cache" in stats

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(max_sessions=0)
        with pytest.raises(ValueError):
            FleetConfig(high_confidence=0.3, medium_confidence=0.5)


# ---------------------------------------------------------------------------
# 5. Reorder buffer / monotonicity sanitization
# ---------------------------------------------------------------------------
class TestReorderBuffer:
    def test_in_order_stream_passes_through(self):
        buffer = ReorderBuffer(capacity=4)
        out = []
        for t in range(10):
            out.extend(buffer.push(1.0, 2.0, float(t)))
        out.extend(buffer.flush())
        assert [fix[2] for fix in out] == [float(t) for t in range(10)]
        assert buffer.stats.reordered == 0
        assert buffer.stats.dropped == 0

    def test_bounded_scramble_recovered_exactly(self):
        import random
        rng = random.Random(5)
        ts = list(range(50))
        scrambled = []
        for start in range(0, 50, 4):
            block = ts[start:start + 4]
            rng.shuffle(block)
            scrambled.extend(block)
        buffer = ReorderBuffer(capacity=8)
        out = []
        for t in scrambled:
            out.extend(buffer.push(0.0, 0.0, float(t)))
        out.extend(buffer.flush())
        assert [fix[2] for fix in out] == [float(t) for t in ts]
        assert buffer.stats.reordered > 0
        assert buffer.stats.dropped == 0

    def test_too_late_ping_dropped_and_counted(self):
        buffer = ReorderBuffer(capacity=2)
        for t in (10.0, 20.0, 30.0, 40.0):
            buffer.push(0.0, 0.0, t)
        assert buffer.push(0.0, 0.0, 5.0) == []  # behind the horizon
        assert buffer.stats.dropped == 1

    def test_drop_policy_drops_out_of_order(self):
        buffer = ReorderBuffer(capacity=4, policy="drop")
        assert buffer.push(0.0, 0.0, 10.0) != []
        assert buffer.push(0.0, 0.0, 5.0) == []
        assert buffer.stats.dropped == 1
        assert buffer.stats.reordered == 0

    def test_state_roundtrip_mid_stream(self):
        buffer = ReorderBuffer(capacity=4)
        for t in (3.0, 1.0, 2.0, 7.0):
            buffer.push(0.0, 0.0, t)
        state = json.loads(json.dumps(buffer.state()))
        resumed = ReorderBuffer.from_state(state)
        assert [f[2] for f in resumed.flush()] == \
               [f[2] for f in buffer.flush()]

    def test_monotonize_stream_repairs_arrays(self):
        ts = np.array([0.0, 2.0, 1.0, 3.0, np.nan, 4.0])
        lats = np.arange(6.0)
        out_lat, out_lng, out_t, stats = monotonize_stream(
            lats, np.zeros(6), ts, capacity=4)
        assert (np.diff(out_t) > 0).all()
        assert list(out_t) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert stats.dropped == 1  # the NaN timestamp
        assert stats.reordered >= 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReorderBuffer(capacity=0)
        with pytest.raises(ValueError):
            ReorderBuffer(policy="mystery")


# ---------------------------------------------------------------------------
# 6. Verdict plumbing
# ---------------------------------------------------------------------------
class TestVerdicts:
    def test_confidence_tiers(self):
        assert confidence_tier(None) == "none"
        assert confidence_tier(0.9) == "high"
        assert confidence_tier(0.5) == "medium"
        assert confidence_tier(0.1) == "low"
        assert confidence_tier(0.75) == "high"   # inclusive boundary
        with pytest.raises(ValueError):
            confidence_tier(0.5, high=0.2, medium=0.6)

    def test_detect_many_validates_note_lengths(self, fitted):
        with pytest.raises(ValueError):
            fitted.detect_many([], [["note"]])

    def test_summary_lines(self, world_and_data, fitted):
        _, dataset = world_and_data
        manager = FleetSessionManager(fitted, FleetConfig())
        for ping in dataset_ping_stream(dataset.samples[:1]):
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        (verdict,) = manager.flush_all()
        line = verdict.summary()
        assert verdict.truck_id in line
        assert "final" in line
