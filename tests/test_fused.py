"""Tests for the fused whole-sequence autograd kernels (repro.nn.fused).

Three layers of guarantees:

* **Gradcheck** — every fused op's hand-derived backward matches central
  finite differences of its forward (float64, ``atol=1e-6``), including
  ragged lengths and all-padded rows.
* **Tape equivalence** — the fused ops produce bit-identical forward
  values and ``rtol=1e-9`` gradients versus the legacy per-step tape
  (``use_fused(False)``), both at the op level and through a full
  one-epoch training run.
* **Thread isolation** — the fused/no-grad mode flags are per-thread.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.encoding import (AutoencoderTrainer, AutoencoderTrainingConfig,
                            EncoderConfig, HierarchicalAutoencoder)
from repro.features import CandidateFeatures, SegmentKind
from repro.nn import (GRU, LSTM, BiLSTMLayer, Linear, LSTMDecoder,
                      SelfAttentionAggregator, Tensor, mse_loss, no_grad,
                      use_fused)
from repro.nn.fused import (affine, attention_pool, fused_enabled,
                            gru_sequence, lstm_decode, lstm_sequence,
                            mlp_head)

RNG = np.random.default_rng(77)

B, T, F, H = 3, 5, 4, 6
LENGTHS = np.array([5, 3, 0])  # ragged + one all-padded row


def _finite_difference(tensors, loss_fn, eps=1e-6):
    """Central-difference gradients of ``loss_fn()`` w.r.t. each tensor."""
    grads = []
    for t in tensors:
        grad = np.zeros_like(t.data)
        flat = t.data.ravel()
        gflat = grad.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            hi = loss_fn()
            flat[i] = original - eps
            lo = loss_fn()
            flat[i] = original
            gflat[i] = (hi - lo) / (2.0 * eps)
        grads.append(grad)
    return grads


def _gradcheck(tensors, build_loss, atol=1e-6):
    """Backprop through ``build_loss()`` and compare to finite differences."""
    for t in tensors:
        t.grad = None
    loss = build_loss()
    loss.backward()
    analytic = [t.grad for t in tensors]

    with no_grad():
        numeric = _finite_difference(tensors, lambda: build_loss().item())
    for a, n in zip(analytic, numeric):
        assert a is not None
        np.testing.assert_allclose(a, n, rtol=1e-5, atol=atol)


def _weighted(out):
    """A non-uniform scalar readout so grads differ per position."""
    w = np.linspace(0.5, 1.5, out.data.size).reshape(out.shape)
    return (out * w).sum()


class TestGradcheckLSTM:
    @pytest.mark.parametrize("reverse", [False, True])
    @pytest.mark.parametrize("lengths", [None, LENGTHS],
                             ids=["dense", "ragged"])
    def test_lstm_sequence(self, reverse, lengths):
        lstm = LSTM(F, H, rng=np.random.default_rng(1), reverse=reverse)
        cell = lstm.cell
        x = Tensor(RNG.normal(size=(B, T, F)), requires_grad=True)

        def build():
            out, h, c = lstm_sequence(x, cell.w_ih, cell.w_hh, cell.bias,
                                      lengths=lengths, reverse=reverse)
            return _weighted(out) + _weighted(h) + _weighted(c)

        _gradcheck([x, cell.w_ih, cell.w_hh, cell.bias], build)


class TestGradcheckGRU:
    @pytest.mark.parametrize("reverse", [False, True])
    @pytest.mark.parametrize("lengths", [None, LENGTHS],
                             ids=["dense", "ragged"])
    def test_gru_sequence(self, reverse, lengths):
        gru = GRU(F, H, rng=np.random.default_rng(2), reverse=reverse)
        cell = gru.cell
        x = Tensor(RNG.normal(size=(B, T, F)), requires_grad=True)

        def build():
            out, h = gru_sequence(x, cell.w_ih, cell.w_hh, cell.b_ih,
                                  cell.b_hh, lengths=lengths,
                                  reverse=reverse)
            return _weighted(out) + _weighted(h)

        _gradcheck([x, cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh], build)


class TestGradcheckDecoder:
    @pytest.mark.parametrize("lengths", [None, np.array([4, 2, 0])],
                             ids=["dense", "ragged"])
    def test_lstm_decode(self, lengths):
        dec = LSTMDecoder(H, H, rng=np.random.default_rng(3))
        cell = dec.cell
        v = Tensor(RNG.normal(size=(3, H)), requires_grad=True)

        def build():
            out = lstm_decode(v, cell.w_ih, cell.w_hh, cell.bias,
                              steps=4, lengths=lengths)
            return _weighted(out)

        _gradcheck([v, cell.w_ih, cell.w_hh, cell.bias], build)


class TestGradcheckAffineAttention:
    @pytest.mark.parametrize("ndim", [2, 3])
    def test_affine(self, ndim):
        lin = Linear(F, H, rng=np.random.default_rng(4))
        shape = (B, F) if ndim == 2 else (B, T, F)
        x = Tensor(RNG.normal(size=shape), requires_grad=True)

        def build():
            return _weighted(affine(x, lin.weight, lin.bias))

        _gradcheck([x, lin.weight, lin.bias], build)

    @pytest.mark.parametrize("lengths", [None, np.array([5, 3, 1])],
                             ids=["dense", "ragged"])
    def test_attention_pool(self, lengths):
        att = SelfAttentionAggregator(H, rng=np.random.default_rng(5))
        outputs = Tensor(RNG.normal(size=(B, T, H)), requires_grad=True)
        last = Tensor(RNG.normal(size=(B, H)), requires_grad=True)

        def build():
            return _weighted(attention_pool(
                outputs, last, att.query.weight, att.query.bias,
                att.key.weight, att.key.bias, lengths))

        _gradcheck([outputs, last, att.query.weight, att.query.bias,
                    att.key.weight, att.key.bias], build)

    @pytest.mark.parametrize("ndim", [2, 3])
    def test_mlp_head(self, ndim):
        fc1 = Linear(F, H, rng=np.random.default_rng(12))
        fc2 = Linear(H, F, rng=np.random.default_rng(13))
        shape = (B, F) if ndim == 2 else (B, T, F)
        x = Tensor(RNG.normal(size=shape), requires_grad=True)

        def build():
            return _weighted(mlp_head(x, fc1.weight, fc1.bias,
                                      fc2.weight, fc2.bias))

        _gradcheck([x, fc1.weight, fc1.bias, fc2.weight, fc2.bias], build)

    def test_fused_mse(self):
        pred = Tensor(RNG.normal(size=(B, T, F)), requires_grad=True)
        target = RNG.normal(size=(B, T, F))
        mask = np.zeros((B, T))
        mask[0, :5] = 1.0
        mask[1, :3] = 1.0
        with use_fused(True):
            assert fused_enabled()

            def build():
                return mse_loss(pred, target, mask)

            _gradcheck([pred], build)


def _grab_grads(tensors):
    grads = [t.grad.copy() for t in tensors]
    for t in tensors:
        t.grad = None
    return grads


class TestTapeEquivalence:
    """Fused modules == legacy per-step tape: values bit-identical,
    gradients within float64 reassociation tolerance."""

    @pytest.mark.parametrize("reverse", [False, True])
    def test_lstm_module(self, reverse):
        lstm = LSTM(F, H, rng=np.random.default_rng(6), reverse=reverse)
        xd = RNG.normal(size=(B, T, F))
        params = [lstm.cell.w_ih, lstm.cell.w_hh, lstm.cell.bias]

        def run():
            x = Tensor(xd.copy(), requires_grad=True)
            out, (h, c) = lstm(x, lengths=LENGTHS)
            (_weighted(out) + _weighted(h) + _weighted(c)).backward()
            return out.data.copy(), _grab_grads([x] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_gru_module(self, reverse):
        gru = GRU(F, H, rng=np.random.default_rng(7), reverse=reverse)
        xd = RNG.normal(size=(B, T, F))
        params = [gru.cell.w_ih, gru.cell.w_hh, gru.cell.b_ih,
                  gru.cell.b_hh]

        def run():
            x = Tensor(xd.copy(), requires_grad=True)
            out, h = gru(x, lengths=LENGTHS)
            (_weighted(out) + _weighted(h)).backward()
            return out.data.copy(), _grab_grads([x] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_decoder_module(self):
        dec = LSTMDecoder(H, H, rng=np.random.default_rng(8))
        vd = RNG.normal(size=(2, H))
        params = [dec.cell.w_ih, dec.cell.w_hh, dec.cell.bias]

        def run():
            v = Tensor(vd.copy(), requires_grad=True)
            out = dec(v, steps=4, lengths=np.array([4, 0]))
            _weighted(out).backward()
            return out.data.copy(), _grab_grads([v] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_bilstm_module(self):
        bi = BiLSTMLayer(F, H, rng=np.random.default_rng(9))
        xd = RNG.normal(size=(B, T, F))
        params = [p for _, p in bi.named_parameters()]

        def run():
            x = Tensor(xd.copy(), requires_grad=True)
            out = bi(x, lengths=LENGTHS)
            _weighted(out).backward()
            return out.data.copy(), _grab_grads([x] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_linear_and_attention_modules(self):
        lin = Linear(H, H, rng=np.random.default_rng(10))
        att = SelfAttentionAggregator(H, rng=np.random.default_rng(11))
        hd = RNG.normal(size=(B, T, H))
        hld = RNG.normal(size=(B, H))
        params = ([lin.weight, lin.bias]
                  + [p for _, p in att.named_parameters()])

        def run():
            outs = Tensor(hd.copy(), requires_grad=True)
            last = Tensor(hld.copy(), requires_grad=True)
            pooled = att(outs, last, LENGTHS[:B])
            _weighted(lin(pooled)).backward()
            return pooled.data.copy(), _grab_grads([outs, last] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)


class TestOperatorEquivalence:
    """The full compression/decompression operators (LSTM + attention +
    fused FC head) match the legacy tape end to end."""

    def test_compression_operator(self):
        from repro.encoding.operators import CompressionOperator
        op = CompressionOperator(F, H, rng=np.random.default_rng(14))
        xd = RNG.normal(size=(B, T, F))
        params = [p for _, p in op.named_parameters()]

        def run():
            x = Tensor(xd.copy(), requires_grad=True)
            out = op(x, lengths=LENGTHS)
            _weighted(out).backward()
            return out.data.copy(), _grab_grads([x] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_decompression_operator(self):
        from repro.encoding.operators import DecompressionOperator
        op = DecompressionOperator(H, H, F, rng=np.random.default_rng(15))
        vd = RNG.normal(size=(B, H))
        params = [p for _, p in op.named_parameters()]

        def run():
            v = Tensor(vd.copy(), requires_grad=True)
            out = op(v, steps=4, lengths=np.array([4, 2, 0]))
            _weighted(out).backward()
            return out.data.copy(), _grab_grads([v] + params)

        with use_fused(False):
            ref_out, ref_grads = run()
        with use_fused(True):
            fused_out, fused_grads = run()
        assert np.array_equal(ref_out, fused_out)
        for a, b in zip(ref_grads, fused_grads):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)


def _make_samples(n, rng):
    samples = []
    for _ in range(n):
        n_stays = int(rng.integers(2, 5))
        segs, kinds = [], []
        for i in range(2 * n_stays - 1):
            length = int(rng.integers(2, 7))
            segs.append(rng.normal(size=(length, 32)))
            kinds.append(SegmentKind.STAY if i % 2 == 0
                         else SegmentKind.MOVE)
        samples.append(CandidateFeatures(pair=(0, 1), segments=tuple(segs),
                                         kinds=tuple(kinds)))
    return samples


class TestTrainerEquivalence:
    def test_one_epoch_loss_curve_matches_legacy_tape(self):
        """Fused vs legacy training over the identical batch stream ends
        with near-identical losses (gradients differ only by float64
        reassociation)."""
        samples = _make_samples(12, np.random.default_rng(0))
        losses = {}
        for fused in (True, False):
            model = HierarchicalAutoencoder(EncoderConfig(seed=21))
            cfg = AutoencoderTrainingConfig(
                epochs=2, batch_size=4, seed=3, fused=fused,
                bucket_batches=False)
            history = AutoencoderTrainer(model, cfg).fit(samples)
            losses[fused] = history.epoch_losses
        np.testing.assert_allclose(losses[True], losses[False],
                                   rtol=1e-7)

    def test_bucketed_batching_trains_and_history_is_finite(self):
        samples = _make_samples(12, np.random.default_rng(1))
        model = HierarchicalAutoencoder(EncoderConfig(seed=22))
        cfg = AutoencoderTrainingConfig(epochs=2, batch_size=4, seed=3,
                                        bucket_batches=True)
        history = AutoencoderTrainer(model, cfg).fit(samples)
        assert len(history.epoch_losses) == 2
        assert np.all(np.isfinite(history.epoch_losses))

    def test_bucketing_is_deterministic(self):
        samples = _make_samples(10, np.random.default_rng(2))
        curves = []
        for _ in range(2):
            model = HierarchicalAutoencoder(EncoderConfig(seed=23))
            cfg = AutoencoderTrainingConfig(epochs=2, batch_size=4, seed=5)
            curves.append(AutoencoderTrainer(model, cfg).fit(samples).epoch_losses)
        assert curves[0] == curves[1]


class TestThreadIsolation:
    def test_use_fused_is_thread_local(self):
        seen = {}

        def worker():
            seen["inner"] = fused_enabled()

        with use_fused(False):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert not fused_enabled()
        # Other threads keep the default (enabled) mode.
        assert seen["inner"] is True

    def test_no_grad_does_not_leak_across_threads(self):
        """Regression: grad mode lives in threading.local, so a worker
        thread inside a ``no_grad`` block still records gradients."""
        recorded = {}

        def worker():
            x = Tensor(np.ones(3), requires_grad=True)
            y = (x * 2.0).sum()
            recorded["requires_grad"] = y.requires_grad

        with no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            x = Tensor(np.ones(3), requires_grad=True)
            assert not (x * 2.0).requires_grad
        assert recorded["requires_grad"] is True
