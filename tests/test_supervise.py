"""Tests for the supervision layer (``repro.supervise``) and its wiring.

Covers the three primitives — deterministic retries, the circuit
breaker state machine, and the quarantine dead-letter store — then the
places they are wired in: supervised ``parallel_map`` (identical
``TaskFailedError`` semantics on every execution path, retries,
timeouts, serial fallback), ``CheckpointManager`` IO retry and the
corruption breaker, and the fleet's failure isolation (spill
degradation, restore degradation, poison-session quarantine).
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.chaos import ChaosEngine, FaultSpec, InjectedFault
from repro.errors import (CheckpointCorruptedError, CircuitOpenError,
                          ReproError, TaskFailedError)
from repro.nn import CheckpointManager, Linear
from repro.perf import parallel_map
from repro.stream import FleetConfig, FleetSessionManager
from repro.supervise import (CircuitBreaker, Quarantine, QuarantineEntry,
                             RetryPolicy)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert policy.counters.retries == 2

    def test_reraises_original_exception_after_exhaustion(self):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)

        def always():
            raise PermissionError("nope")

        # The *original* exception type survives, so existing
        # ``except OSError`` call sites keep working.
        with pytest.raises(PermissionError, match="nope"):
            policy.call(always)
        assert policy.counters.exhausted == 1

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.0)
        attempts = []

        def wrong_type():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(wrong_type)
        assert len(attempts) == 1

    def test_backoff_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                             backoff_factor=2.0, max_backoff_s=0.3,
                             jitter=0.1, seed=42)
        first = policy.delays(key=3)
        assert first == policy.delays(key=3)          # replayable
        assert first != policy.delays(key=4)          # per-site streams
        assert len(first) == 4
        for delay in first:
            assert delay <= 0.3 * 1.1 + 1e-12
        # Jitter stays within +-10% of the exponential base.
        for i, base in enumerate([0.1, 0.2, 0.3, 0.3]):
            assert base * 0.9 <= first[i] <= base * 1.1

    def test_sleeps_follow_the_published_schedule(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.05, seed=9)
        slept = []

        def failing():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.call(failing, key=7, sleep=slept.append)
        assert slept == policy.delays(key=7)

    def test_attempt_timeout_becomes_timeout_error(self):
        import time
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0,
                             timeout_s=0.05)

        def hangs():
            time.sleep(0.5)

        with pytest.raises(TimeoutError):
            policy.call(hangs)
        assert policy.counters.timeouts == 2

    def test_wrap_decorator(self):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        state = {"n": 0}

        def once():
            state["n"] += 1
            if state["n"] == 1:
                raise OSError("first")
            return state["n"]

        assert policy.wrap(once)() == 2


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker("dep", failure_threshold=3, cooldown=100)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["rejections"] == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        assert breaker.allow()
        breaker.record_failure()                 # trips open
        assert not breaker.allow()               # still cooling
        assert not breaker.allow()
        assert breaker.allow()                   # cooldown elapsed: probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.allow()
        breaker.record_failure()
        breaker.allow()                          # tick 2
        assert breaker.allow()                   # probe admitted
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_call_raises_typed_error_when_open(self):
        breaker = CircuitBreaker("io", failure_threshold=1, cooldown=1000)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert isinstance(excinfo.value, ReproError)
        assert "io" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_record_and_lookup(self):
        store = Quarantine()
        store.record("truck-1|d0", "tick-detect", ValueError("bad"),
                     attempts=2, metadata={"tick": 3})
        store.record("truck-2|d0", "restore", OSError("disk"))
        store.record("truck-1|d0", "flush-detect", ValueError("again"))
        assert len(store) == 3
        assert "truck-1|d0" in store
        assert store.get("truck-1|d0").stage == "flush-detect"  # latest
        assert store.get("missing") is None
        summary = store.summary()
        assert summary["entries"] == 3
        assert summary["by_stage"] == {"tick-detect": 1, "restore": 1,
                                       "flush-detect": 1}

    def test_persists_and_reloads(self, tmp_path):
        store = Quarantine(tmp_path / "q")
        store.record("truck-9|d1", "tick-detect", RuntimeError("boom"),
                     metadata={"state": {"truck_id": "truck-9"}})
        reloaded = Quarantine.load(tmp_path / "q")
        assert reloaded.keys() == ["truck-9|d1"]
        entry = reloaded.get("truck-9|d1")
        assert entry.error_type == "RuntimeError"
        assert entry.metadata["state"] == {"truck_id": "truck-9"}

    def test_entry_roundtrip(self):
        entry = QuarantineEntry(seq=4, key="k", stage="s",
                                error_type="OSError", error="x",
                                attempts=3, metadata={"a": 1})
        assert QuarantineEntry.from_dict(entry.to_dict()) == entry


# ---------------------------------------------------------------------------
# Supervised parallel_map
# ---------------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _fails_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x * x


class TestParallelSupervision:
    def test_serial_and_pool_raise_identical_errors(self):
        """Satellite: both paths surface TaskFailedError with the index."""
        for workers in (None, 2):
            with pytest.raises(TaskFailedError) as excinfo:
                parallel_map(_fails_on_three, range(6), workers=workers)
            assert excinfo.value.index == 3
            assert isinstance(excinfo.value, ReproError)
            assert isinstance(excinfo.value.__cause__, ValueError)

    def test_retry_recovers_injected_crashes_serial(self):
        counters: dict[str, int] = {}
        specs = [FaultSpec("parallel.task", "crash", rate=1.0,
                           max_fires=2)]
        with ChaosEngine(3, specs):
            results = parallel_map(
                _square, range(6),
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
                counters=counters)
        assert results == [i * i for i in range(6)]
        assert counters["retries"] == 2

    def test_retry_recovers_injected_crashes_pool(self):
        counters: dict[str, int] = {}
        specs = [FaultSpec("parallel.task", "crash", rate=0.4,
                           max_fires=3)]
        with ChaosEngine(11, specs):
            results = parallel_map(
                _square, range(10), workers=2,
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
                counters=counters)
        assert results == [i * i for i in range(10)]
        assert counters.get("retries", 0) >= 1

    def test_hung_worker_times_out_and_recovers(self):
        counters: dict[str, int] = {}
        specs = [FaultSpec("parallel.task", "hang", rate=1.0, param=5.0,
                           max_fires=1)]
        with ChaosEngine(5, specs):
            results = parallel_map(
                _square, range(4), workers=2,
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0,
                                  timeout_s=0.5),
                counters=counters)
        assert results == [0, 1, 4, 9]
        assert counters["timeouts"] == 1

    def test_wrong_result_caught_by_verify(self):
        counters: dict[str, int] = {}
        specs = [FaultSpec("parallel.task", "wrong", rate=1.0,
                           max_fires=1)]
        with ChaosEngine(2, specs):
            results = parallel_map(
                _square, range(4),
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
                verify=lambda value: isinstance(value, int),
                counters=counters)
        assert results == [0, 1, 4, 9]

    def test_deterministic_results_match_serial(self):
        with ChaosEngine(9, [FaultSpec("parallel.task", "crash",
                                       rate=0.3)]):
            supervised = parallel_map(
                _square, range(12), workers=2,
                retry=RetryPolicy(max_attempts=4, backoff_base_s=0.0))
        assert supervised == [_square(i) for i in range(12)]


# ---------------------------------------------------------------------------
# CheckpointManager supervision
# ---------------------------------------------------------------------------
def _make_module() -> Linear:
    import numpy as np
    return Linear(3, 2, rng=np.random.default_rng(0))


class TestCheckpointSupervision:
    def test_save_and_load_retry_transient_io(self, tmp_path):
        manager = CheckpointManager(
            tmp_path, retry=RetryPolicy(max_attempts=3,
                                        backoff_base_s=0.0))
        module = _make_module()
        specs = [FaultSpec("io.write", "fail", rate=1.0, max_fires=1),
                 FaultSpec("io.read", "fail", rate=1.0, max_fires=1)]
        with ChaosEngine(1, specs):
            manager.save(epoch=4, modules={"m": module})
            state = manager.load()
        assert state is not None and state.epoch == 4
        assert manager.retry.counters.retries >= 2

    def test_unretried_save_surfaces_injected_fault(self, tmp_path):
        manager = CheckpointManager(tmp_path)   # no retry configured
        with ChaosEngine(1, [FaultSpec("io.write", "fail", rate=1.0)]):
            with pytest.raises(InjectedFault):
                manager.save(epoch=0, modules={"m": _make_module()})

    def test_corruption_breaker_stops_reloading_garbage(self, tmp_path):
        breaker = CircuitBreaker("ckpt", failure_threshold=2,
                                 cooldown=1000)
        manager = CheckpointManager(tmp_path, strict=True,
                                    corruption_breaker=breaker)
        manager.save(epoch=1, modules={"m": _make_module()})
        manager.arrays_path.write_bytes(b"garbage")
        for _ in range(2):
            with pytest.raises(CheckpointCorruptedError):
                manager.load()
        # Third load: the breaker rejects without touching the disk.
        with pytest.raises(CircuitOpenError):
            manager.load()
        assert breaker.state == "open"

    def test_lenient_breaker_open_returns_none(self, tmp_path):
        breaker = CircuitBreaker("ckpt", failure_threshold=1,
                                 cooldown=1000)
        manager = CheckpointManager(tmp_path, strict=False,
                                    corruption_breaker=breaker)
        manager.save(epoch=1, modules={"m": _make_module()})
        manager.arrays_path.write_bytes(b"garbage")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert manager.load() is None       # corrupt: discarded
            manager.save(epoch=2, modules={"m": _make_module()})
            assert manager.load() is None       # breaker open: refused


# ---------------------------------------------------------------------------
# Fleet failure isolation
# ---------------------------------------------------------------------------
def _feed(manager: FleetSessionManager, truck: str, n: int = 5,
          t0: float = 0.0) -> None:
    for i in range(n):
        manager.ingest(truck, 32.0 + 0.001 * i, 120.9, t0 + 30.0 * i,
                       day="d0")


class TestFleetIsolation:
    def test_spill_failure_keeps_session_resident(self, tmp_path):
        """Satellite: a failing spill degrades, it does not poison ingest."""
        config = FleetConfig(
            max_sessions=1, checkpoint_dir=tmp_path / "ckpt",
            io_retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0))
        manager = FleetSessionManager(None, config)
        _feed(manager, "truck-a")
        with ChaosEngine(0, [FaultSpec("io.write", "fail", rate=1.0)]):
            with pytest.warns(RuntimeWarning, match="keeping it resident"):
                _feed(manager, "truck-b")       # evicts truck-a: fails
        assert manager.counters.spill_failures >= 1
        assert manager.counters.sessions_evicted == 0
        assert len(manager) == 2                # over budget, but intact
        # Both sessions still flush to real verdicts.
        finals = manager.flush_all()
        assert {v.truck_id for v in finals} == {"truck-a", "truck-b"}

    def test_spill_breaker_stops_hammering_dead_disk(self, tmp_path):
        config = FleetConfig(
            max_sessions=1, checkpoint_dir=tmp_path / "ckpt",
            spill_breaker_failures=2, spill_breaker_cooldown=10_000,
            io_retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0))
        manager = FleetSessionManager(None, config)
        with ChaosEngine(0, [FaultSpec("io.write", "fail", rate=1.0)]):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                for i in range(6):
                    _feed(manager, f"truck-{i}")
        assert manager.spill_breaker.state == "open"
        assert manager.counters.spill_skipped_breaker >= 1
        # Failures stop accumulating once the breaker opens.
        assert manager.counters.spill_failures == 2

    def test_unreadable_spill_degrades_to_fresh_session(self, tmp_path):
        config = FleetConfig(max_sessions=1,
                             checkpoint_dir=tmp_path / "ckpt")
        manager = FleetSessionManager(None, config)
        _feed(manager, "truck-a")
        _feed(manager, "truck-b")               # truck-a spilled
        path = manager._checkpoint_path(("truck-a", "d0"))
        path.write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            session = manager.session("truck-a", "d0")
        assert session.counters.pings_ingested == 0          # fresh
        assert manager.counters.restore_failures == 1
        entry = manager.quarantine.get("truck-a|d0")
        assert entry is not None and entry.stage == "restore"

    def test_poison_session_is_quarantined_not_fatal(self):
        manager = FleetSessionManager(None, FleetConfig())
        _feed(manager, "truck-good")
        _feed(manager, "truck-bad", t0=10.0)
        poison = [FaultSpec("fleet.snapshot", "fail",
                            keys={"truck-bad|d0"})]
        with ChaosEngine(0, poison):
            verdicts = manager.tick()           # must not raise
        assert len(verdicts) == 2
        assert manager.counters.sessions_quarantined == 1
        entry = manager.quarantine.get("truck-bad|d0")
        assert entry.stage == "tick-detect"
        assert entry.error_type == "InjectedFault"
        # Replay metadata reconstructs the captured session.
        from repro.stream import TruckSession
        rebuilt = TruckSession.from_state(entry.metadata["state"])
        assert rebuilt.truck_id == "truck-bad"
        assert rebuilt.counters.pings_ingested == 5
        # The healthy truck is untouched and still resident.
        assert ("truck-good", "d0") in manager._sessions

    def test_flush_quarantines_poison_and_flushes_the_rest(self):
        manager = FleetSessionManager(None, FleetConfig())
        for truck in ("t1", "t2", "t3"):
            _feed(manager, truck)
        with ChaosEngine(0, [FaultSpec("fleet.snapshot", "fail",
                                       keys={"t2|d0"})]):
            finals = manager.flush_all()        # must not raise
        assert len(finals) == 3
        assert manager.counters.sessions_flushed == 2
        assert manager.counters.sessions_quarantined == 1
        assert manager.quarantine.get("t2|d0").stage == "flush-detect"
        assert len(manager) == 0

    def test_stats_exposes_supervision_state(self):
        manager = FleetSessionManager(None, FleetConfig())
        stats = manager.stats()
        assert stats["quarantine"]["entries"] == 0
        assert stats["breakers"]["detector"]["state"] == "closed"
        assert stats["breakers"]["session_spill"]["state"] == "closed"
        assert "retries" in stats["io_retry"]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(os.system(f"python -m pytest -x -q {__file__}"))
