"""Tests for the downstream-analysis APIs (waybills, compliance, sites)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (CurfewRule, SiteCluster, UrbanAreaRule,
                            Violation, Waybill, audit_detection,
                            cluster_endpoints, detection_endpoints,
                            find_unregistered_sites, waybill_errors,
                            waybill_from_detection)
from repro.eval import DetectionRecord, endpoint_accuracy, overlap_score
from repro.geo import BoundingBox
from repro.model import LoadedLabel, TimeInterval, Trajectory
from repro.pipeline import DetectionResult
from repro.processing import RawTrajectoryProcessor

from .test_processing import trajectory_with_stays


def make_detection(num_stays=4, pair=(1, 3)):
    """A DetectionResult over a deterministic multi-stay trajectory."""
    trajectory = trajectory_with_stays(num_stays=num_stays)
    processed = RawTrajectoryProcessor().process(trajectory)
    assert processed is not None and processed.num_stay_points == num_stays
    distribution = np.zeros(processed.num_candidates)
    distribution[processed.candidate_index(pair)] = 1.0
    return DetectionResult(pair, distribution, processed)


class TestWaybill:
    def test_rejects_reversed_times(self):
        with pytest.raises(ValueError):
            Waybill(100.0, 50.0, 0, 0, 0, 0)

    def test_from_detection_uses_endpoint_stays(self):
        result = make_detection(pair=(2, 4))
        waybill = waybill_from_detection(result)
        loading = result.candidate.stay_points[0]
        unloading = result.candidate.stay_points[-1]
        assert waybill.loading_t == loading.arrival_t
        assert waybill.unloading_t == unloading.arrival_t
        assert waybill.loading_lat == pytest.approx(loading.centroid[0])

    def test_errors_zero_for_perfect_waybill(self):
        result = make_detection(pair=(1, 3))
        waybill = waybill_from_detection(result)
        label = LoadedLabel(
            loading=TimeInterval(waybill.loading_t, waybill.loading_t + 600),
            unloading=TimeInterval(waybill.unloading_t,
                                   waybill.unloading_t + 600),
            loading_lat=waybill.loading_lat,
            loading_lng=waybill.loading_lng,
            unloading_lat=waybill.unloading_lat,
            unloading_lng=waybill.unloading_lng)
        time_error, location_error = waybill_errors(waybill, label)
        assert time_error == pytest.approx(0.0)
        assert location_error == pytest.approx(0.0, abs=1e-6)


class TestCompliance:
    def test_violation_validation(self):
        with pytest.raises(ValueError):
            Violation("r", "d", 1.5)

    def test_urban_rule_flags_inside_fixes(self):
        result = make_detection()
        loaded = result.candidate.subtrajectory()
        box = BoundingBox(loaded.lats.min() - 0.01, loaded.lngs.min() - 0.01,
                          loaded.lats.max() + 0.01, loaded.lngs.max() + 0.01)
        violations = audit_detection(result, [UrbanAreaRule(box)])
        assert len(violations) == 1
        assert violations[0].severity == pytest.approx(1.0)

    def test_urban_rule_clean_outside(self):
        result = make_detection()
        far_box = BoundingBox(10.0, 10.0, 11.0, 11.0)
        assert audit_detection(result, [UrbanAreaRule(far_box)]) == []

    def test_curfew_rule_validation(self):
        with pytest.raises(ValueError):
            CurfewRule(start_s=5 * 3600, end_s=2 * 3600)

    def test_curfew_rule_flags_night_movement(self):
        # Fast movement with timestamps inside the 2-5 am window.
        n = 10
        lats = 31.9 + np.arange(n) * 0.01
        ts = 2.5 * 3600 + np.arange(n) * 60.0
        trajectory = Trajectory(lats, np.full(n, 120.8), ts)
        rule = CurfewRule()
        violations = rule.check(trajectory)
        assert len(violations) == 1
        assert violations[0].rule == "curfew"

    def test_curfew_rule_ignores_daytime(self):
        n = 10
        lats = 31.9 + np.arange(n) * 0.01
        ts = 12 * 3600 + np.arange(n) * 60.0
        trajectory = Trajectory(lats, np.full(n, 120.8), ts)
        assert CurfewRule().check(trajectory) == []

    def test_curfew_rule_ignores_parked_truck(self):
        n = 10
        ts = 3 * 3600 + np.arange(n) * 60.0
        trajectory = Trajectory(np.full(n, 31.9) + np.arange(n) * 1e-7,
                                np.full(n, 120.8), ts)
        assert CurfewRule().check(trajectory) == []


class TestSites:
    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            cluster_endpoints([], radius_m=0)
        with pytest.raises(ValueError):
            SiteCluster(0, 0, 0)

    def test_clustering_merges_nearby(self):
        base = (32.0, 120.9)
        near = (32.0005, 120.9)       # ~55 m
        far = (32.1, 120.9)           # ~11 km
        clusters = cluster_endpoints([base, near, far])
        assert len(clusters) == 2
        assert sorted(c.visits for c in clusters) == [1, 2]

    def test_detection_endpoints(self):
        result = make_detection(pair=(1, 3))
        endpoints = detection_endpoints([result])
        assert len(endpoints) == 2
        assert endpoints[0] == result.candidate.stay_points[0].centroid

    def test_find_unregistered_sites(self):
        result = make_detection(pair=(1, 3))
        endpoints = detection_endpoints([result])
        # Register only the loading endpoint; unloading becomes suspicious.
        registered = [endpoints[0]]
        suspicious = find_unregistered_sites(
            [result, result], registered, min_visits=2)
        assert len(suspicious) == 1
        assert suspicious[0].visits == 2

    def test_everything_registered_is_clean(self):
        result = make_detection(pair=(1, 3))
        registered = detection_endpoints([result])
        assert find_unregistered_sites([result, result], registered) == []


class TestExtraMetrics:
    def test_endpoint_accuracy(self):
        records = [
            DetectionRecord(5, (1, 4), (1, 4)),   # both right
            DetectionRecord(5, (1, 4), (1, 3)),   # loading right
            DetectionRecord(5, (1, 4), (2, 4)),   # unloading right
            DetectionRecord(5, (1, 4), (2, 3)),   # both wrong
        ]
        scores = endpoint_accuracy(records)
        assert scores["loading"] == 50.0
        assert scores["unloading"] == 50.0
        assert scores["either"] == 75.0

    def test_overlap_score(self):
        exact = [DetectionRecord(5, (1, 4), (1, 4))]
        assert overlap_score(exact) == pytest.approx(1.0)
        disjoint = [DetectionRecord(6, (1, 2), (5, 6))]
        assert overlap_score(disjoint) == pytest.approx(0.0)
        partial = [DetectionRecord(6, (1, 4), (2, 5))]
        assert overlap_score(partial) == pytest.approx(2.0 / 4.0)

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            endpoint_accuracy([])
        with pytest.raises(ValueError):
            overlap_score([])
