"""Tests for modules, layers, losses, optimizers, training utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (Adam, EarlyStopping, GradientAccumulator, Linear,
                      Module, Parameter, SGD, Sequential, Tensor, bce_loss,
                      clip_grad_norm, kld_loss, load_module, mse_loss,
                      save_module)

RNG = np.random.default_rng(11)


class TinyNet(Module):
    def __init__(self, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.first = Linear(3, 4, rng)
        self.second = Linear(4, 1, rng)
        self.blocks = [Linear(2, 2, rng), Linear(2, 2, rng)]

    def forward(self, x):
        return self.second(self.first(x).tanh())


class TestModule:
    def test_named_parameters_discovers_nested_and_lists(self):
        net = TinyNet()
        names = {name for name, _ in net.named_parameters()}
        assert "first.weight" in names
        assert "second.bias" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names

    def test_num_parameters(self):
        net = TinyNet()
        expected = 3 * 4 + 4 + 4 * 1 + 1 + 2 * (2 * 2 + 2)
        assert net.num_parameters() == expected

    def test_state_dict_roundtrip(self):
        a, b = TinyNet(), TinyNet(np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_load_state_dict_rejects_missing_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("first.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_train_eval_mode_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.training
        assert not net.first.training
        assert not net.blocks[0].training
        net.train()
        assert net.blocks[1].training

    def test_zero_grad_clears(self):
        net = TinyNet()
        x = Tensor(RNG.normal(size=(2, 3)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 2, RNG)
        out = layer(Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 2)

    def test_forward_batched_3d(self):
        layer = Linear(5, 2, RNG)
        out = layer(Tensor(RNG.normal(size=(3, 4, 5))))
        assert out.shape == (3, 4, 2)

    def test_rejects_wrong_width(self):
        layer = Linear(5, 2, RNG)
        with pytest.raises(ValueError):
            layer(Tensor(RNG.normal(size=(7, 4))))

    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(3, 3, RNG), Linear(3, 2, RNG))
        assert len(seq) == 2
        out = seq(Tensor(RNG.normal(size=(4, 3))))
        assert out.shape == (4, 2)


class TestLosses:
    def test_mse_zero_for_identical(self):
        pred = Tensor(np.ones((2, 3)))
        assert mse_loss(pred, np.ones((2, 3))).item() == 0.0

    def test_mse_matches_numpy(self):
        pred_data = RNG.normal(size=(4, 3))
        target = RNG.normal(size=(4, 3))
        loss = mse_loss(Tensor(pred_data), target).item()
        np.testing.assert_allclose(loss, ((pred_data - target) ** 2).mean())

    def test_mse_mask_ignores_padding(self):
        pred = Tensor(np.ones((2, 3)))
        target = np.zeros((2, 3))
        target[:, 2] = 100.0  # padded column with junk
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        np.testing.assert_allclose(mse_loss(pred, target, mask).item(), 1.0)

    def test_mse_empty_mask_raises(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones((2, 2))), np.ones((2, 2)),
                     np.zeros((2, 2)))

    def test_kld_zero_for_identical_distributions(self):
        p = np.array([0.2, 0.3, 0.5])
        assert abs(kld_loss(p, Tensor(p)).item()) < 1e-9

    def test_kld_positive_for_different_distributions(self):
        p = np.array([0.9, 0.05, 0.05])
        q = Tensor(np.array([1 / 3, 1 / 3, 1 / 3]))
        assert kld_loss(p, q).item() > 0.0

    def test_kld_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            kld_loss(np.ones(3) / 3, Tensor(np.ones(4) / 4))

    def test_kld_gradient_direction(self):
        # Pushing prediction toward the label must reduce the loss.
        q = Tensor(np.array([0.5, 0.5]), requires_grad=True)
        label = np.array([0.9, 0.1])
        loss = kld_loss(label, q)
        loss.backward()
        # KL = -sum(p log q) + const, so dKL/dq_i = -p_i/q_i: the gradient
        # pulls hardest on the under-weighted coordinate.
        assert q.grad[0] < q.grad[1] < 0

    def test_bce_loss_basics(self):
        good = bce_loss(Tensor(np.array([0.99, 0.01])),
                        np.array([1.0, 0.0])).item()
        bad = bce_loss(Tensor(np.array([0.01, 0.99])),
                       np.array([1.0, 0.0])).item()
        assert good < bad

    def test_bce_finite_at_extremes(self):
        loss = bce_loss(Tensor(np.array([1.0, 0.0])), np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())


class TestOptim:
    def _quadratic_descent(self, optimizer_cls, **kwargs):
        target = np.array([1.0, -2.0, 3.0])
        p = Parameter(np.zeros(3))
        opt = optimizer_cls([p], **kwargs)
        for _ in range(500):
            opt.zero_grad()
            loss = ((p - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        return p.data, target

    def test_sgd_converges_on_quadratic(self):
        value, target = self._quadratic_descent(SGD, lr=0.05)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic_descent(SGD, lr=0.02, momentum=0.9)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        value, target = self._quadratic_descent(Adam, lr=0.05)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        before = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(before, 20.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-6)

    def test_clip_grad_norm_noop_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])


class TestTrainingUtilities:
    def test_early_stopping_triggers_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0)
        assert not stopper.update(0.5)   # improvement
        assert not stopper.update(0.6)   # bad 1
        assert stopper.update(0.7)       # bad 2 -> stop
        assert stopper.best == 0.5
        assert stopper.best_epoch == 1

    def test_early_stopping_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        assert not stopper.update(1.0)
        assert stopper.update(0.95)  # not enough improvement

    def test_gradient_accumulator_steps_every_n(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        acc = GradientAccumulator(opt, accumulate=4, max_grad_norm=None)
        for _ in range(4):
            loss = (p - Tensor(np.array([4.0]))) ** 2
            acc.backward(loss.sum())
        # One step of the averaged gradient: grad = 2*(0-4) = -8 -> p = 8
        np.testing.assert_allclose(p.data, [8.0])

    def test_gradient_accumulator_flush(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        acc = GradientAccumulator(opt, accumulate=10, max_grad_norm=None)
        acc.backward(((p - Tensor(np.array([10.0]))) ** 2).sum())
        np.testing.assert_allclose(p.data, [0.0])  # not yet applied
        acc.flush()
        assert p.data[0] != 0.0


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        a = TinyNet(np.random.default_rng(1))
        b = TinyNet(np.random.default_rng(2))
        save_module(a, tmp_path / "model.npz")
        load_module(b, tmp_path / "model.npz")
        x = Tensor(RNG.normal(size=(2, 3)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_load_appends_suffix(self, tmp_path):
        a = TinyNet()
        save_module(a, tmp_path / "model")
        load_module(a, tmp_path / "model")
