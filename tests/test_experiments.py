"""Tests for the experiment harness and artifact cache (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArtifactCorruptedError
from repro.experiments import Experiment, get_experiment_config


@pytest.fixture(scope="module")
def tiny_experiment(tmp_path_factory):
    root = tmp_path_factory.mktemp("artifacts")
    import os
    os.environ["REPRO_ARTIFACTS"] = str(root)
    try:
        yield Experiment(get_experiment_config("tiny"))
    finally:
        os.environ.pop("REPRO_ARTIFACTS", None)


class TestConfig:
    def test_scales_exist(self):
        for scale in ("tiny", "small", "default"):
            config = get_experiment_config(scale)
            assert config.name == scale

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_experiment_config("galactic")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_experiment_config().name == "small"


class TestExperiment:
    def test_dataset_cached_and_deterministic(self, tiny_experiment):
        first = tiny_experiment.dataset
        path = tiny_experiment.cache / "dataset.json.gz"
        assert path.exists()
        again = Experiment(get_experiment_config("tiny"))
        np.testing.assert_allclose(first[0].trajectory.lats,
                                   again.dataset[0].trajectory.lats)

    def test_splits_are_truck_disjoint(self, tiny_experiment):
        train, val, test = tiny_experiment.splits
        assert not (set(train.truck_ids) & set(test.truck_ids))
        assert len(train) + len(val) + len(test) == len(
            tiny_experiment.dataset)

    def test_lead_trained_and_cached(self, tiny_experiment):
        lead = tiny_experiment.lead_variant("LEAD")
        directory = tiny_experiment.cache / "lead" / "LEAD"
        assert (directory / "state.json").exists()
        assert (directory / "autoencoder_history.json").exists()
        # A fresh Experiment must load, not retrain.
        again = Experiment(get_experiment_config("tiny"))
        reloaded = again.lead_variant("LEAD")
        test_set = tiny_experiment.test_set()
        if test_set:
            p = test_set[0][0]
            assert lead.detect_processed(p).pair == \
                reloaded.detect_processed(p).pair

    def test_nofor_nobac_share_lead(self, tiny_experiment):
        lead = tiny_experiment.lead_variant("LEAD")
        assert tiny_experiment.lead_variant("LEAD-NoFor") is lead
        assert tiny_experiment.lead_variant("LEAD-NoBac") is lead

    def test_records_cached(self, tiny_experiment):
        records = tiny_experiment.method_records("SP-R")
        path = tiny_experiment.cache / "records" / "SP-R.json"
        assert path.exists()
        again = tiny_experiment.method_records("SP-R")
        assert [r.detected_pair for r in records] == \
            [r.detected_pair for r in again]

    def test_table3_methods(self, tiny_experiment):
        table = tiny_experiment.table3()
        assert set(table) == {"SP-R", "SP-GRU", "SP-LSTM", "LEAD"}
        assert all(table.values())

    def test_fig9_and_fig10_series(self, tiny_experiment):
        fig9 = tiny_experiment.fig9()
        assert set(fig9) == {"HA in LEAD", "HA in LEAD-NoSel",
                             "HA in LEAD-NoHie"}
        assert all(len(curve) >= 1 for curve in fig9.values())
        fig10 = tiny_experiment.fig10()
        assert set(fig10) == {"forward-detector", "backward-detector"}

    def test_table4_methods(self, tiny_experiment):
        table = tiny_experiment.table4()
        assert set(table) == {"LEAD", "LEAD-NoPoi", "LEAD-NoSel",
                              "LEAD-NoHie", "LEAD-NoGro", "LEAD-NoFor",
                              "LEAD-NoBac"}


class TestCorruptionPolicy:
    """Damaged cache artifacts: loud by default, self-healing on request.

    Runs last in this module — it corrupts the shared cache and then
    heals it, so earlier cached-artifact tests see a pristine state.
    """

    @staticmethod
    def _flip_byte(path):
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_corrupt_weights_raise_then_retrain(self, tiny_experiment):
        tiny_experiment.lead_variant("LEAD")  # ensure trained + cached
        self._flip_byte(
            tiny_experiment.cache / "lead" / "LEAD" / "autoencoder.npz")
        strict = Experiment(get_experiment_config("tiny"))
        with pytest.raises(ArtifactCorruptedError):
            strict.lead_variant("LEAD")
        healing = Experiment(get_experiment_config("tiny"),
                             retrain_if_corrupt=True)
        healed = healing.lead_variant("LEAD")
        test_set = tiny_experiment.test_set()
        if test_set:
            assert healed.detect_processed(test_set[0][0]).pair
        # The cache is valid again: a fresh strict Experiment just loads.
        Experiment(get_experiment_config("tiny")).lead_variant("LEAD")

    def test_corrupt_records_are_regenerated(self, tiny_experiment):
        first = tiny_experiment.method_records("SP-R")
        path = tiny_experiment.cache / "records" / "SP-R.json"
        path.write_text("{definitely not json")
        again = tiny_experiment.method_records("SP-R")
        assert [r.detected_pair for r in again] == \
            [r.detected_pair for r in first]
