"""Failure-injection and property tests across the processing stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Trajectory
from repro.processing import (NoiseFilter, RawTrajectoryProcessor,
                              StayPointExtractor)

from .test_processing import trajectory_with_stays

METERS_PER_DEG = 111_000.0


def drop_points(trajectory: Trajectory, fraction: float,
                rng: np.random.Generator) -> Trajectory:
    """Simulate GPS dropouts: randomly delete a fraction of fixes."""
    n = len(trajectory)
    keep = np.sort(rng.choice(n, size=max(2, int(n * (1 - fraction))),
                              replace=False))
    return Trajectory(trajectory.lats[keep], trajectory.lngs[keep],
                      trajectory.ts[keep], truck_id=trajectory.truck_id)


def inject_outliers(trajectory: Trajectory, count: int,
                    rng: np.random.Generator,
                    jump_m: float = 20_000.0) -> Trajectory:
    lats = trajectory.lats.copy()
    lngs = trajectory.lngs.copy()
    indices = rng.choice(len(trajectory) - 1, size=count, replace=False) + 1
    for i in indices:
        lats[i] += jump_m / METERS_PER_DEG
    return Trajectory(lats, lngs, trajectory.ts,
                      truck_id=trajectory.truck_id, day=trajectory.day)


def inject_nonfinite(trajectory: Trajectory, count: int,
                     rng: np.random.Generator,
                     value: float = np.nan) -> Trajectory:
    """Corrupt ``count`` fixes' coordinates with NaN/Inf (cold receiver)."""
    lats = trajectory.lats.copy()
    lngs = trajectory.lngs.copy()
    indices = rng.choice(len(trajectory), size=count, replace=False)
    lats[indices] = value
    lngs[indices] = value
    return Trajectory(lats, lngs, trajectory.ts,
                      truck_id=trajectory.truck_id, day=trajectory.day)


def duplicate_timestamps(trajectory: Trajectory, count: int,
                         rng: np.random.Generator
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw arrays with ``count`` duplicated timestamps (buffered uploads).

    Returns raw ``(lats, lngs, ts)`` — :class:`Trajectory` itself
    rejects non-increasing timestamps, so these arrays exercise the
    repair path (``trajectory_from_raw``), not the constructor.
    """
    ts = trajectory.ts.copy()
    indices = rng.choice(len(trajectory) - 1, size=count, replace=False) + 1
    ts[indices] = ts[indices - 1]
    return trajectory.lats.copy(), trajectory.lngs.copy(), ts


def frozen_clock(trajectory: Trajectory, start: int, length: int
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw arrays with a frozen-clock segment: ts stuck at one instant."""
    ts = trajectory.ts.copy()
    stop = min(start + length, len(ts))
    ts[start:stop] = ts[start]
    return trajectory.lats.copy(), trajectory.lngs.copy(), ts


def shuffle_timestamps(trajectory: Trajectory, rng: np.random.Generator
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw arrays with out-of-order fixes (late batched uploads)."""
    order = rng.permutation(len(trajectory))
    return (trajectory.lats[order].copy(), trajectory.lngs[order].copy(),
            trajectory.ts[order].copy())


class TestDropoutRobustness:
    @pytest.mark.parametrize("fraction", [0.1, 0.3])
    def test_stays_survive_moderate_dropout(self, fraction):
        rng = np.random.default_rng(1)
        trajectory = trajectory_with_stays(num_stays=4, stay_points=30)
        degraded = drop_points(trajectory, fraction, rng)
        stays = StayPointExtractor().extract(degraded)
        # Long stays survive losing up to 30% of their fixes.
        assert len(stays) == 4

    def test_processor_never_crashes_on_degraded_input(self):
        rng = np.random.default_rng(2)
        processor = RawTrajectoryProcessor()
        trajectory = trajectory_with_stays(num_stays=3)
        for fraction in (0.0, 0.2, 0.5, 0.8):
            degraded = drop_points(trajectory, fraction, rng)
            result = processor.process(degraded)  # may be None, not raise
            if result is not None:
                assert result.num_stay_points >= 2


class TestOutlierRobustness:
    def test_filter_restores_stay_structure(self):
        rng = np.random.default_rng(3)
        trajectory = trajectory_with_stays(num_stays=3)
        clean_stays = StayPointExtractor().extract(trajectory)
        corrupted = inject_outliers(trajectory, count=5, rng=rng)
        filtered = NoiseFilter().filter(corrupted)
        stays = StayPointExtractor().extract(filtered)
        assert len(stays) == len(clean_stays)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 6))
    def test_filter_removes_exactly_the_outliers(self, count):
        rng = np.random.default_rng(count)
        trajectory = trajectory_with_stays(num_stays=3, stay_points=25)
        corrupted = inject_outliers(trajectory, count=count, rng=rng)
        filtered = NoiseFilter().filter(corrupted)
        assert len(corrupted) - len(filtered) == count


class TestFaultInjectionHelpers:
    def test_inject_outliers_preserves_identity(self):
        rng = np.random.default_rng(0)
        trajectory = trajectory_with_stays(num_stays=3)
        tagged = Trajectory(trajectory.lats, trajectory.lngs, trajectory.ts,
                            truck_id="truck-7", day="2021-03-01")
        corrupted = inject_outliers(tagged, count=2, rng=rng)
        assert corrupted.truck_id == "truck-7"
        assert corrupted.day == "2021-03-01"

    def test_inject_nonfinite_marks_fixes(self):
        rng = np.random.default_rng(1)
        trajectory = trajectory_with_stays(num_stays=3)
        corrupted = inject_nonfinite(trajectory, count=4, rng=rng)
        assert int(np.isnan(corrupted.lats).sum()) == 4

    def test_duplicate_timestamps_rejected_by_constructor(self):
        rng = np.random.default_rng(2)
        trajectory = trajectory_with_stays(num_stays=3)
        lats, lngs, ts = duplicate_timestamps(trajectory, count=3, rng=rng)
        with pytest.raises(ValueError):
            Trajectory(lats, lngs, ts)

    def test_frozen_clock_freezes_segment(self):
        trajectory = trajectory_with_stays(num_stays=3)
        _, _, ts = frozen_clock(trajectory, start=5, length=4)
        assert (ts[5:9] == ts[5]).all()


class TestTimestampEdgeCases:
    def test_minimal_two_point_trajectory(self):
        trajectory = Trajectory([31.9, 31.91], [120.8, 120.8], [0.0, 60.0])
        assert RawTrajectoryProcessor().process(trajectory) is None

    def test_single_point_trajectory(self):
        trajectory = Trajectory([31.9], [120.8], [0.0])
        assert RawTrajectoryProcessor().process(trajectory) is None

    def test_irregular_sampling_intervals(self):
        """Stay extraction is threshold-based, not count-based."""
        # 4 fixes spanning 20 minutes with irregular gaps: still one stay.
        trajectory = Trajectory([31.9] * 4, [120.8] * 4,
                                [0.0, 60.0, 700.0, 1200.0])
        stays = StayPointExtractor().extract(trajectory)
        assert len(stays) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(1.0, 600.0), min_size=3, max_size=40))
    def test_extractor_invariants_under_random_sampling(self, gaps):
        ts = np.concatenate([[0.0], np.cumsum(gaps)])
        rng = np.random.default_rng(int(sum(gaps)) % 2**31)
        lats = 31.9 + rng.normal(0, 20 / METERS_PER_DEG, size=ts.size)
        lngs = 120.8 + rng.normal(0, 20 / METERS_PER_DEG, size=ts.size)
        trajectory = Trajectory(lats, lngs, ts)
        stays = StayPointExtractor().extract(trajectory)
        for stay in stays:
            assert stay.duration_s >= 15 * 60
        for a, b in zip(stays, stays[1:]):
            assert a.end < b.start
