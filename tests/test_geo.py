"""Tests for the geodesy utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (BoundingBox, LocalProjection, NANTONG_BBOX,
                       haversine_m, pairwise_haversine_m, speed_kmh)

LAT = st.floats(-80.0, 80.0)
LNG = st.floats(-179.0, 179.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(32.0, 120.9, 32.0, 120.9) == 0.0

    def test_one_degree_latitude_about_111km(self):
        d = haversine_m(31.0, 120.0, 32.0, 120.0)
        assert 110_000 < d < 112_500

    def test_known_city_pair(self):
        # Nantong to Shanghai ~ 100 km as the crow flies.
        d = haversine_m(31.98, 120.89, 31.23, 121.47)
        assert 80_000 < d < 120_000

    @settings(max_examples=50, deadline=None)
    @given(LAT, LNG, LAT, LNG)
    def test_symmetry(self, lat1, lng1, lat2, lng2):
        d1 = haversine_m(lat1, lng1, lat2, lng2)
        d2 = haversine_m(lat2, lng2, lat1, lng1)
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(LAT, LNG, LAT, LNG)
    def test_nonnegative(self, lat1, lng1, lat2, lng2):
        assert haversine_m(lat1, lng1, lat2, lng2) >= 0.0

    def test_array_broadcast(self):
        lats = np.array([31.0, 32.0])
        d = haversine_m(lats, 120.0, lats + 0.1, 120.0)
        assert d.shape == (2,)
        assert (d > 0).all()

    def test_pairwise(self):
        lats = np.array([31.0, 31.0, 31.1])
        lngs = np.array([120.0, 120.1, 120.1])
        d = pairwise_haversine_m(lats, lngs)
        assert d.shape == (2,)
        assert (d > 0).all()

    def test_pairwise_single_point(self):
        assert pairwise_haversine_m(np.array([31.0]),
                                    np.array([120.0])).size == 0

    def test_pairwise_rejects_mismatched(self):
        with pytest.raises(ValueError):
            pairwise_haversine_m(np.zeros(3), np.zeros(2))


class TestSpeed:
    def test_basic_conversion(self):
        assert speed_kmh(1000.0, 3600.0) == pytest.approx(1.0)

    def test_zero_duration_is_infinite(self):
        assert speed_kmh(100.0, 0.0) == float("inf")

    def test_negative_duration_is_infinite(self):
        assert speed_kmh(100.0, -5.0) == float("inf")


class TestBoundingBox:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 2.0, 1.0, 3.0)

    def test_contains_and_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        assert box.center == (1.0, 2.0)
        assert box.contains(1.0, 1.0)
        assert not box.contains(3.0, 1.0)

    def test_clamp(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.clamp(2.0, -1.0) == (1.0, 0.0)

    def test_sample_inside(self):
        rng = np.random.default_rng(0)
        points = NANTONG_BBOX.sample(rng, 100)
        assert points.shape == (100, 2)
        assert all(NANTONG_BBOX.contains(lat, lng) for lat, lng in points)

    def test_sample_single(self):
        rng = np.random.default_rng(0)
        point = NANTONG_BBOX.sample(rng)
        assert point.shape == (2,)

    def test_shrink(self):
        inner = NANTONG_BBOX.shrink(0.5)
        assert inner.lat_span == pytest.approx(NANTONG_BBOX.lat_span / 2)
        assert inner.center == pytest.approx(NANTONG_BBOX.center)

    def test_shrink_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            NANTONG_BBOX.shrink(0.0)


class TestProjection:
    def test_roundtrip(self):
        proj = LocalProjection(*NANTONG_BBOX.center)
        lat, lng = 32.05, 120.8
        x, y = proj.to_xy(lat, lng)
        lat2, lng2 = proj.to_latlng(x, y)
        assert float(lat2) == pytest.approx(lat, abs=1e-9)
        assert float(lng2) == pytest.approx(lng, abs=1e-9)

    def test_distances_match_haversine_at_city_scale(self):
        proj = LocalProjection(*NANTONG_BBOX.center)
        a = (32.0, 120.7)
        b = (32.1, 120.9)
        ax, ay = proj.to_xy(*a)
        bx, by = proj.to_xy(*b)
        planar = float(np.hypot(bx - ax, by - ay))
        spherical = haversine_m(*a, *b)
        assert planar == pytest.approx(spherical, rel=2e-3)

    def test_rejects_pole(self):
        with pytest.raises(ValueError):
            LocalProjection(90.0, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(31.8, 32.3), st.floats(120.5, 121.2))
    def test_roundtrip_property(self, lat, lng):
        proj = LocalProjection(*NANTONG_BBOX.center)
        lat2, lng2 = proj.to_latlng(*proj.to_xy(lat, lng))
        assert float(lat2) == pytest.approx(lat, abs=1e-9)
        assert float(lng2) == pytest.approx(lng, abs=1e-9)
